//! Determinism gate for the sharded parallel sweep driver.
//!
//! The paper's paired methodology (AHEFT and HEFT judged on *identical*
//! grids) only survives parallel execution if case seeds are functions of
//! the grid coordinates, never of execution order. This suite pins the
//! contract end to end: a smoke-scale sweep must produce **byte-identical
//! CSV rows** at `--threads 1`, `--threads 4`, and under a 2-way
//! `--shard` split — so `experiments --scale full all --threads 64` (or a
//! multi-process CI shard matrix) is bit-for-bit the sequential run.

use aheft_bench::experiments;
use aheft_bench::scale::Scale;
use aheft_bench::sweep::{Shard, SweepConfig};
use aheft_bench::tables::TextTable;

fn threads(n: usize) -> SweepConfig {
    SweepConfig::with_threads(n)
}

fn shard(index: usize, count: usize) -> SweepConfig {
    SweepConfig { shard: Shard { index, count }, ..SweepConfig::sequential() }
}

/// The byte content of the table's CSV rows (what `write_csv` emits,
/// minus the header line). Each call gets its own directory: the tests in
/// this file run concurrently inside one process.
fn csv_rows(t: &TextTable) -> Vec<String> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "aheft_sweep_det_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    t.write_csv(&dir, "t").expect("csv write");
    let text = std::fs::read_to_string(dir.join("t.csv")).expect("csv read");
    let _ = std::fs::remove_dir_all(&dir);
    text.lines().skip(1).map(str::to_string).collect()
}

/// Interleave the round-robin shards' rows back into full-table order.
fn merge_shards(parts: &[Vec<String>]) -> Vec<String> {
    let mut iters: Vec<_> = parts.iter().map(|p| p.iter()).collect();
    let total: usize = parts.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    for gi in 0..total {
        merged.push(iters[gi % parts.len()].next().expect("shard owns row").clone());
    }
    merged
}

#[test]
fn table3_is_bit_identical_across_thread_counts() {
    let t1 = experiments::table3(Scale::Smoke, &threads(1));
    let t4 = experiments::table3(Scale::Smoke, &threads(4));
    assert_eq!(csv_rows(&t1), csv_rows(&t4));
    assert_eq!(t1.rows.len(), 5, "one row per CCR value");
}

#[test]
fn policy_matrix_shard_split_reproduces_the_full_run() {
    // The --policy axis runs through the same sharded sweep driver: one
    // row group per policy, bit-identical at any parallelism or split.
    let names: Vec<String> = vec!["ranked-jit".into(), "aheft".into(), "heft".into()];
    let full = csv_rows(&experiments::policy_matrix(Scale::Smoke, &threads(1), &names));
    let t4 = csv_rows(&experiments::policy_matrix(Scale::Smoke, &threads(4), &names));
    assert_eq!(full, t4);
    let s0 = csv_rows(&experiments::policy_matrix(Scale::Smoke, &shard(0, 2), &names));
    let s1 = csv_rows(&experiments::policy_matrix(Scale::Smoke, &shard(1, 2), &names));
    assert_eq!(s0.len() + s1.len(), full.len(), "shards partition the rows");
    assert_eq!(merge_shards(&[s0, s1]), full, "2-way shard union != full run");
}

#[test]
fn table3_shard_split_reproduces_the_full_run() {
    let full = csv_rows(&experiments::table3(Scale::Smoke, &threads(1)));
    let s0 = csv_rows(&experiments::table3(Scale::Smoke, &shard(0, 2)));
    let s1 = csv_rows(&experiments::table3(Scale::Smoke, &shard(1, 2)));
    assert_eq!(s0.len() + s1.len(), full.len(), "shards partition the rows");
    assert_eq!(merge_shards(&[s0, s1]), full, "2-way shard union != full run");
}

#[test]
fn merge_tool_restores_sharded_csv_directories_bit_for_bit() {
    // The `experiments merge` path end to end: write a 3-way shard split
    // of table3 to real CSV directories, merge them, and require byte
    // identity with the unsharded CSV.
    let root = std::env::temp_dir().join(format!("aheft_merge_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let full_dir = root.join("full");
    experiments::table3(Scale::Smoke, &threads(1)).write_csv(&full_dir, "table3").unwrap();
    let mut inputs = Vec::new();
    for i in 0..3 {
        let dir = root.join(format!("s{i}"));
        experiments::table3(Scale::Smoke, &shard(i, 3)).write_csv(&dir, "table3").unwrap();
        inputs.push(dir);
    }
    let out = root.join("merged");
    let merged = aheft_bench::merge::merge_shard_dirs(&out, &inputs).expect("merge succeeds");
    assert_eq!(merged.len(), 1);
    assert_eq!(merged[0].name, "table3.csv");
    let full = std::fs::read_to_string(full_dir.join("table3.csv")).unwrap();
    let stitched = std::fs::read_to_string(out.join("table3.csv")).unwrap();
    assert_eq!(full, stitched, "merged shard CSVs must equal the unsharded run byte for byte");
    // Shard order matters: a permuted input list must be rejected or give
    // different bytes — never silently agree.
    let swapped = vec![inputs[1].clone(), inputs[0].clone(), inputs[2].clone()];
    match aheft_bench::merge::merge_shard_dirs(&root.join("merged_swapped"), &swapped) {
        Err(_) => {}
        Ok(_) => {
            let bad =
                std::fs::read_to_string(root.join("merged_swapped").join("table3.csv")).unwrap();
            assert_ne!(bad, full, "permuted shard order must not reproduce the full run");
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sharded_workers_may_also_be_parallel() {
    // A shard is itself a parallel sweep: threads and sharding compose.
    let full = csv_rows(&experiments::table4(Scale::Smoke, &threads(4)));
    let s0 = csv_rows(&experiments::table4(
        Scale::Smoke,
        &SweepConfig { shard: Shard { index: 0, count: 2 }, ..SweepConfig::with_threads(4) },
    ));
    let s1 = csv_rows(&experiments::table4(
        Scale::Smoke,
        &SweepConfig { shard: Shard { index: 1, count: 2 }, ..SweepConfig::with_threads(2) },
    ));
    assert_eq!(merge_shards(&[s0, s1]), full);
}

#[test]
fn two_series_rows_are_thread_and_shard_invariant() {
    // Table 8 rows aggregate two app series from one row group — the
    // group-level shard boundary must keep both series of a row together.
    let t1 = experiments::table8(Scale::Smoke, &threads(1));
    let t4 = experiments::table8(Scale::Smoke, &threads(4));
    assert_eq!(csv_rows(&t1), csv_rows(&t4));
    let s0 = csv_rows(&experiments::table8(Scale::Smoke, &shard(0, 2)));
    let s1 = csv_rows(&experiments::table8(Scale::Smoke, &shard(1, 2)));
    assert_eq!(merge_shards(&[s0, s1]), csv_rows(&t1));
}

#[test]
fn headline_aggregates_are_thread_invariant() {
    // The headline is a single row group whose three rows aggregate the
    // whole campaign — the strictest reduction-order test.
    let t1 = experiments::headline(Scale::Smoke, &threads(1));
    let t4 = experiments::headline(Scale::Smoke, &threads(4));
    assert_eq!(csv_rows(&t1), csv_rows(&t4));
    assert_eq!(t1.rows.len(), 3);
}

#[test]
fn fig8_rows_are_thread_invariant() {
    let t1 = experiments::fig8(Scale::Smoke, 'd', &threads(1));
    let t4 = experiments::fig8(Scale::Smoke, 'd', &threads(4));
    assert_eq!(csv_rows(&t1), csv_rows(&t4));
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "three full smoke chaos matrices are too slow for debug builds; runs \
              under `cargo test --release`, and CI proves the same property in \
              release via the sharded `experiments robustness` smoke run + merge \
              + byte diff"
)]
fn robustness_chaos_matrix_is_thread_and_shard_invariant() {
    // The chaos matrix must stay paired and deterministic under fault
    // injection: the fault RNG is a per-case derived stream, so rows are
    // bit-identical at any thread count and under a 2-way shard split
    // (the shards here also use *different* worker counts on purpose).
    let full = csv_rows(&experiments::robustness(Scale::Smoke, &threads(4)));
    assert_eq!(full.len(), 48, "3 levels x 4 recovery x 4 scheduling policies");
    for row in &full {
        assert_eq!(row.split(',').count(), 12, "fault metrics present in every row: {row}");
    }
    let s0 = csv_rows(&experiments::robustness(
        Scale::Smoke,
        &SweepConfig { shard: Shard { index: 0, count: 2 }, ..SweepConfig::with_threads(2) },
    ));
    let s1 = csv_rows(&experiments::robustness(
        Scale::Smoke,
        &SweepConfig { shard: Shard { index: 1, count: 2 }, ..SweepConfig::with_threads(4) },
    ));
    assert_eq!(s0.len() + s1.len(), full.len(), "shards partition the rows");
    assert_eq!(merge_shards(&[s0, s1]), full, "2-way shard union != full run");
}

#[test]
fn multitenant_service_sweep_is_thread_and_shard_invariant() {
    // The multi-tenant service sweep nests a second event loop (arrivals,
    // admissions, preemptions) inside each case; its case seeds are still
    // pure functions of the cell coordinates and the fairness *name*, so
    // the same byte-identity contract holds — at any thread count and
    // under a 2-way shard split with unequal worker counts.
    let full = csv_rows(&experiments::multitenant(Scale::Smoke, &threads(4), &[]));
    assert_eq!(full.len(), 27, "3 rates x 3 tenant counts x 3 fairness policies");
    for row in &full {
        assert_eq!(row.split(',').count(), 10, "service metrics present in every row: {row}");
    }
    assert_eq!(full, csv_rows(&experiments::multitenant(Scale::Smoke, &threads(1), &[])));
    let s0 = csv_rows(&experiments::multitenant(
        Scale::Smoke,
        &SweepConfig { shard: Shard { index: 0, count: 2 }, ..SweepConfig::with_threads(2) },
        &[],
    ));
    let s1 = csv_rows(&experiments::multitenant(
        Scale::Smoke,
        &SweepConfig { shard: Shard { index: 1, count: 2 }, ..SweepConfig::with_threads(4) },
        &[],
    ));
    assert_eq!(s0.len() + s1.len(), full.len(), "shards partition the rows");
    assert_eq!(merge_shards(&[s0, s1]), full, "2-way shard union != full run");
}

#[test]
fn ablations_are_thread_invariant_and_shardable() {
    let seq: Vec<Vec<String>> =
        experiments::ablations(Scale::Smoke, &threads(1)).iter().map(csv_rows).collect();
    let par: Vec<Vec<String>> =
        experiments::ablations(Scale::Smoke, &threads(4)).iter().map(csv_rows).collect();
    assert_eq!(seq, par);
    // Each ablation table shards its rows independently (row i of every
    // table comes from shard i % m), so each table's sharded rows must
    // interleave back to exactly the unsharded table.
    let s0 = experiments::ablations(Scale::Smoke, &shard(0, 2));
    let s1 = experiments::ablations(Scale::Smoke, &shard(1, 2));
    assert_eq!(s0.len(), seq.len());
    for (ti, full) in seq.iter().enumerate() {
        let merged = merge_shards(&[csv_rows(&s0[ti]), csv_rows(&s1[ti])]);
        assert_eq!(&merged, full, "ablation table {ti} shard union != full run");
    }
}
