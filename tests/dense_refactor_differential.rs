//! Differential pinning of the dense-state scheduler refactor (ISSUE 2).
//!
//! The paired-comparison methodology of the paper depends on the scheduler
//! being *deterministic*, and the refactor to dense, workspace-reused state
//! must be *behaviour-preserving bit for bit*. This suite checks the
//! production scheduler against an independent **oracle** implementation
//! that mirrors the pre-refactor hot path exactly: hash-map keyed snapshot
//! state, per-(job, resource, predecessor) FEA classification, fresh
//! allocations per pass — the straightforward transcription of the paper's
//! Fig. 3 + Eq. 1 that the seed repository shipped.
//!
//! Over seeded random DAGs × mid-run snapshots × pool subsets, plans must
//! be **byte-identical** (same jobs, same resources, same f64 start/finish
//! bits) whether produced by the oracle, by a fresh workspace, or by a
//! dirty workspace reused across unrelated instances.

use std::collections::HashMap;

use aheft::core::aheft::{
    aheft_reschedule, aheft_reschedule_with, AheftConfig, KernelMode, ReschedulableSet,
    ScheduleWorkspace,
};
use aheft::gridsim::executor::Snapshot;
use aheft::gridsim::plan::Assignment;
use aheft::gridsim::reservation::{SlotPolicy, SlotTable};
use aheft::prelude::*;
use aheft::workflow::generators::random::{generate, RandomDagParams};
use aheft::workflow::rank::{priority_order_from_ranks, rank_upward_over};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pre-refactor reference: hash-map state, FEA classified per
/// (job, resource, predecessor). Returns (assignments, predicted makespan).
fn oracle_reschedule(
    dag: &Dag,
    costs: &CostTable,
    snapshot: &Snapshot,
    alive: &[ResourceId],
    config: &AheftConfig,
) -> (Vec<Assignment>, f64) {
    let view = snapshot.view();
    let clock = snapshot.clock;
    let total_resources = costs.resource_count();

    let mut floor = vec![f64::INFINITY; total_resources];
    for &r in alive {
        let reported = snapshot.resource_avail.get(r.idx()).copied().unwrap_or(clock);
        floor[r.idx()] = reported.max(clock);
    }

    let mut pinned: HashMap<JobId, (ResourceId, f64)> = HashMap::new();
    if config.reschedulable == ReschedulableSet::NotStarted {
        for j in dag.job_ids() {
            if let aheft::gridsim::JobState::Running { resource, expected_finish, .. } =
                snapshot.state(j)
            {
                pinned.insert(j, (resource, expected_finish));
                if resource.idx() < floor.len() {
                    floor[resource.idx()] = floor[resource.idx()].max(expected_finish);
                }
            }
        }
    }

    let ranks = rank_upward_over(dag, costs, alive);
    let order = priority_order_from_ranks(dag, &ranks);

    let mut tables: Vec<SlotTable> = vec![SlotTable::new(); total_resources];
    let mut placed: HashMap<JobId, (ResourceId, f64)> = HashMap::new();
    let mut assignments = Vec::new();

    for &job in &order {
        if snapshot.is_finished(job) || pinned.contains_key(&job) {
            continue;
        }
        let mut best: Option<(f64, f64, ResourceId)> = None;
        for &r in alive {
            let w = costs.comp(job, r);
            let mut ready = clock;
            for &(p, e) in dag.preds(job) {
                // Eq. 1, classified from scratch for every (job, r, pred).
                let t = if snapshot.is_finished(p) {
                    match view.edge_data_available(p, e, r) {
                        Some(t) => t,
                        None => clock + costs.comm(e),
                    }
                } else if let Some(&(rp, ef)) = pinned.get(&p) {
                    if rp == r {
                        ef
                    } else {
                        ef + costs.comm(e)
                    }
                } else {
                    let &(rp, sft) = placed.get(&p).expect("topological order");
                    if rp == r {
                        sft
                    } else {
                        sft + costs.comm(e)
                    }
                };
                if t > ready {
                    ready = t;
                }
            }
            let start =
                tables[r.idx()].earliest_start(ready.max(floor[r.idx()]), w, config.slot_policy);
            let eft = start + w;
            if best.is_none_or(|(b, _, _)| eft < b) {
                best = Some((eft, start, r));
            }
        }
        let (eft, start, r) = best.expect("alive is non-empty");
        tables[r.idx()].reserve(start, eft - start, job);
        placed.insert(job, (r, eft));
        assignments.push(Assignment { job, resource: r, start, finish: eft });
    }

    let mut predicted = assignments.iter().map(|a| a.finish).fold(0.0, f64::max);
    for j in dag.job_ids() {
        if let aheft::gridsim::JobState::Finished { aft, .. } = snapshot.state(j) {
            predicted = predicted.max(aft);
        }
    }
    for &(_, ef) in pinned.values() {
        predicted = predicted.max(ef);
    }
    (assignments, predicted)
}

/// Byte-exact assignment comparison (f64 compared by bit pattern).
fn assert_identical(kind: &str, seed: u64, a: &[Assignment], b: &[Assignment]) {
    assert_eq!(a.len(), b.len(), "{kind} (seed {seed}): plan lengths differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.job, y.job, "{kind} (seed {seed})");
        assert_eq!(x.resource, y.resource, "{kind} (seed {seed}): {} placed differently", x.job);
        assert_eq!(
            x.start.to_bits(),
            y.start.to_bits(),
            "{kind} (seed {seed}): {} start {} vs {}",
            x.job,
            x.start,
            y.start
        );
        assert_eq!(
            x.finish.to_bits(),
            y.finish.to_bits(),
            "{kind} (seed {seed}): {} finish {} vs {}",
            x.job,
            x.finish,
            y.finish
        );
    }
}

/// Fabricate a plausible mid-run snapshot: a topo prefix finished (spread
/// over resources, with committed transfers for some out-edges), a couple
/// of jobs running, the rest waiting.
fn fabricate_snapshot(
    dag: &Dag,
    costs: &CostTable,
    resources: usize,
    rng: &mut StdRng,
) -> Snapshot {
    let clock = 100.0 + rng.random_range(0.0..200.0);
    let mut snap = Snapshot::initial(resources);
    snap.clock = clock;
    snap.resource_avail = vec![clock; resources];
    let done = rng.random_range(0..=dag.job_count() / 2);
    let topo: Vec<JobId> = dag.topo_order().to_vec();
    for (k, &j) in topo.iter().take(done).enumerate() {
        let r = ResourceId::from(k % resources);
        let aft = clock * (0.2 + 0.6 * (k as f64 / done.max(1) as f64));
        snap.set_finished(j, r, aft);
        for &(_, e) in dag.succs(j) {
            if rng.random_range(0.0..1.0) < 0.5 {
                let dest = ResourceId::from(rng.random_range(0..resources));
                snap.add_transfer(e, dest, aft + costs.comm(e));
            }
        }
    }
    // Up to two running jobs whose predecessors are all in the done prefix.
    let mut running = 0;
    for &j in topo.iter().skip(done) {
        if running >= 2 {
            break;
        }
        if dag.preds(j).iter().all(|&(p, _)| snap.is_finished(p)) {
            let r = ResourceId::from(rng.random_range(0..resources));
            snap.set_running(j, r, clock - 5.0, clock + rng.random_range(1.0..50.0));
            running += 1;
        }
    }
    snap
}

#[test]
fn scheduler_matches_prerefactor_oracle_on_random_instances() {
    let mut ws = ScheduleWorkspace::new(); // deliberately reused across all cases
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = 10 + (seed as usize % 5) * 10;
        let resources = 2 + (seed as usize % 7);
        let p = RandomDagParams {
            jobs,
            ccr: [0.1, 1.0, 5.0][seed as usize % 3],
            ..RandomDagParams::paper_default()
        };
        let wf = generate(&p, &mut rng);
        let costs = wf.sample_table(resources, &mut rng);
        let snap = fabricate_snapshot(&wf.dag, &costs, resources, &mut rng);
        // Pool subset: drop one resource on odd seeds (a departed resource).
        let alive: Vec<ResourceId> = (0..resources)
            .filter(|&r| !(seed % 2 == 1 && r == seed as usize % resources))
            .map(ResourceId::from)
            .collect();
        for config in [
            AheftConfig::default(),
            AheftConfig { slot_policy: SlotPolicy::EndOfQueue, ..Default::default() },
            AheftConfig { reschedulable: ReschedulableSet::NotStarted, ..Default::default() },
        ] {
            let (oracle_plan, oracle_predicted) =
                oracle_reschedule(&wf.dag, &costs, &snap, &alive, &config);
            let fresh = aheft_reschedule(&wf.dag, &costs, &snap, &alive, &config);
            assert_identical("fresh-vs-oracle", seed, fresh.plan.assignments(), &oracle_plan);
            assert_eq!(
                fresh.predicted_makespan.to_bits(),
                oracle_predicted.to_bits(),
                "seed {seed}: predicted makespan diverged"
            );
            let reused =
                aheft_reschedule_with(&wf.dag, &costs, snap.view(), &alive, &config, &mut ws);
            assert_identical("reused-vs-oracle", seed, reused.plan.assignments(), &oracle_plan);
            assert_eq!(reused.predicted_makespan.to_bits(), oracle_predicted.to_bits());
        }
    }
}

#[test]
fn tiled_and_parallel_kernels_match_the_oracle() {
    // ISSUE 9: the tiled cost kernels (row-major mirror, direct Eq. 2
    // path) and the parallel rank sweep / EFT scan must stay pinned to the
    // same pre-refactor oracle, with every threshold forced so the new
    // machinery genuinely runs on these small instances.
    let mut ws = ScheduleWorkspace::new(); // deliberately reused across all cases
    ws.set_kernel_mode(KernelMode::ForceTiled);
    ws.set_threads(2);
    ws.set_eft_par_min(1);
    ws.set_rank_par_min(1);
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(500 + seed);
        let jobs = 10 + (seed as usize % 5) * 10;
        let resources = 2 + (seed as usize % 7);
        let p = RandomDagParams {
            jobs,
            ccr: [0.1, 1.0, 5.0][seed as usize % 3],
            ..RandomDagParams::paper_default()
        };
        let wf = generate(&p, &mut rng);
        let costs = wf.sample_table(resources, &mut rng);
        let snap = fabricate_snapshot(&wf.dag, &costs, resources, &mut rng);
        let alive: Vec<ResourceId> = (0..resources).map(ResourceId::from).collect();
        for config in [
            AheftConfig::default(),
            AheftConfig { reschedulable: ReschedulableSet::NotStarted, ..Default::default() },
        ] {
            let (oracle_plan, oracle_predicted) =
                oracle_reschedule(&wf.dag, &costs, &snap, &alive, &config);
            let got = aheft_reschedule_with(&wf.dag, &costs, snap.view(), &alive, &config, &mut ws);
            assert_identical("tiled-par-vs-oracle", seed, got.plan.assignments(), &oracle_plan);
            assert_eq!(got.predicted_makespan.to_bits(), oracle_predicted.to_bits());
        }
    }
}

#[test]
fn end_to_end_runs_are_reproducible_and_strategy_invariants_hold() {
    // Full simulated executions (pool growth + reschedules) must be exactly
    // reproducible run to run, and AHEFT must still dominate static HEFT.
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let p = RandomDagParams { jobs: 30, ..RandomDagParams::paper_default() };
        let wf = generate(&p, &mut rng);
        let costs = wf.sample_table(5, &mut rng);
        let dynamics = PoolDynamics::periodic_growth(5, 250.0, 0.2);
        let a1 = run_aheft(&wf.dag, &costs, &wf.costgen, &dynamics, seed);
        let a2 = run_aheft(&wf.dag, &costs, &wf.costgen, &dynamics, seed);
        assert_eq!(a1.makespan.to_bits(), a2.makespan.to_bits(), "seed {seed}: not reproducible");
        assert_eq!(a1.reschedules, a2.reschedules);
        assert_eq!(a1.events_processed, a2.events_processed);
        let h = run_static_heft(&wf.dag, &costs, &wf.costgen, &dynamics, seed);
        assert!(a1.makespan <= h.makespan + 1e-6, "seed {seed}: AHEFT lost to HEFT");
    }
}
