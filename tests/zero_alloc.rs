//! Pins the ISSUE-2 acceptance criterion: after planner warm-up, one AHEFT
//! scheduling pass performs **zero heap allocations** — every piece of
//! scratch state lives in the reused [`ScheduleWorkspace`].
//!
//! A counting global allocator wraps the system allocator; this lives in
//! its own integration-test binary so other tests' allocations don't bleed
//! into the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The allocation counter is process-global, but the libtest harness runs
/// `#[test]` fns concurrently — one test's warm-up allocations must not
/// land inside another's measured window. Every test takes this lock.
static SERIAL: Mutex<()> = Mutex::new(());

use aheft::core::aheft::{
    aheft_reschedule, aheft_schedule_into, AheftConfig, KernelMode, ReschedulableSet,
    ScheduleWorkspace,
};
use aheft::core::planner::{AdaptivePlanner, Decision, ReschedulePolicy};
use aheft::core::policy::PlanQueues;
use aheft::gridsim::executor::Snapshot;
use aheft::gridsim::reservation::SlotPolicy;
use aheft::prelude::*;
use aheft::workflow::generators::random::{generate, RandomDagParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Assert that `measure` performs zero heap allocations, tolerating rare
/// *ambient* process allocations (the counter is global: allocator
/// machinery, harness threads): a genuine per-pass allocation shows up in
/// **every** window, so it suffices that one of a few windows is clean.
fn assert_alloc_free(label: &str, mut measure: impl FnMut()) {
    let mut last = 0;
    for _ in 0..5 {
        let before = allocations();
        measure();
        last = allocations() - before;
        if last == 0 {
            return;
        }
    }
    panic!("{label}: {last} heap allocations in every measured window");
}

fn midrun_instance(jobs: usize, resources: usize) -> (Dag, CostTable, Snapshot, Vec<ResourceId>) {
    let mut rng = StdRng::seed_from_u64(42);
    let p = RandomDagParams { jobs, ..RandomDagParams::paper_default() };
    let wf = generate(&p, &mut rng);
    let costs = wf.sample_table(resources, &mut rng);
    let mut snap = Snapshot::initial(resources);
    snap.clock = 500.0;
    snap.resource_avail = vec![500.0; resources];
    for (k, &j) in wf.dag.topo_order().to_vec().iter().take(jobs / 2).enumerate() {
        snap.set_finished(j, ResourceId::from(k % resources), 400.0);
        for &(_, e) in wf.dag.succs(j) {
            snap.add_transfer(e, ResourceId::from((k + 1) % resources), 450.0);
        }
    }
    let alive = (0..resources).map(ResourceId::from).collect();
    (wf.dag, costs, snap, alive)
}

#[test]
fn aheft_pass_allocates_nothing_after_warmup() {
    let _serial = SERIAL.lock().unwrap();
    let (dag, costs, snap, alive) = midrun_instance(120, 16);
    for config in [
        AheftConfig::default(),
        AheftConfig { slot_policy: SlotPolicy::EndOfQueue, ..Default::default() },
        AheftConfig { reschedulable: ReschedulableSet::NotStarted, ..Default::default() },
    ] {
        let mut ws = ScheduleWorkspace::new();
        // Warm-up: buffers grow to steady-state capacity.
        let warm = aheft_schedule_into(&dag, &costs, snap.view(), &alive, &config, &mut ws);
        aheft_schedule_into(&dag, &costs, snap.view(), &alive, &config, &mut ws);
        let mut last = 0.0;
        assert_alloc_free(&format!("{config:?}"), || {
            for _ in 0..10 {
                last = aheft_schedule_into(&dag, &costs, snap.view(), &alive, &config, &mut ws);
            }
        });
        assert_eq!(warm.to_bits(), last.to_bits(), "reuse changed the result");
    }
}

#[test]
fn tiled_kernel_pass_allocates_nothing_after_warmup() {
    // ISSUE 9: the row-major mirror is built once per cost-table state and
    // cached on the workspace — warm sequential passes through the tiled
    // kernels (mirror-fed EFT scan, tiled rank fold) stay zero-alloc.
    // Parallel passes (threads > 1) are exempt by design: the pool scope
    // itself spawns threads.
    let _serial = SERIAL.lock().unwrap();
    let (dag, costs, snap, alive) = midrun_instance(120, 16);
    let config = AheftConfig::default();
    let mut ws = ScheduleWorkspace::new();
    ws.set_kernel_mode(KernelMode::ForceTiled);
    let warm = aheft_schedule_into(&dag, &costs, snap.view(), &alive, &config, &mut ws);
    aheft_schedule_into(&dag, &costs, snap.view(), &alive, &config, &mut ws);
    let mut last = 0.0;
    assert_alloc_free("tiled kernels", || {
        for _ in 0..10 {
            last = aheft_schedule_into(&dag, &costs, snap.view(), &alive, &config, &mut ws);
        }
    });
    assert_eq!(warm.to_bits(), last.to_bits(), "reuse changed the result");
}

#[test]
fn warm_what_if_queries_allocate_nothing_after_warmup() {
    // ISSUE 10: a stream of what-if queries against one scenario version
    // must be allocation-free after the first query grows the scratch
    // buffers — the hypothetical table is built by appending columns to a
    // clone cached on the workspace and truncating them back off in place
    // (`CostTable::truncate_resources`), never by cloning per query.
    let _serial = SERIAL.lock().unwrap();
    let (dag, costs, snap, alive) = midrun_instance(120, 16);
    let config = AheftConfig::default();
    let column = vec![25.0; dag.job_count()];
    let queries = [
        WhatIfQuery::AddResources { columns: vec![column.clone()] },
        WhatIfQuery::RemoveResource(ResourceId(3)),
        WhatIfQuery::Modify { add: vec![column], remove: vec![ResourceId(5)] },
    ];
    let mut ws = ScheduleWorkspace::new();
    // Warm-up: scratch table synced, pool buffers grown, rank caches hot.
    let mut warm = Vec::new();
    for q in &queries {
        let r =
            aheft::core::whatif::try_what_if_with(&dag, &costs, &snap, &alive, &config, q, &mut ws)
                .unwrap();
        warm.push(r);
        let _ =
            aheft::core::whatif::try_what_if_with(&dag, &costs, &snap, &alive, &config, q, &mut ws);
    }
    let mut last = Vec::with_capacity(queries.len());
    assert_alloc_free("warm what-if window", || {
        last.clear();
        for _ in 0..5 {
            last.clear();
            for q in &queries {
                let r = aheft::core::whatif::try_what_if_with(
                    &dag, &costs, &snap, &alive, &config, q, &mut ws,
                )
                .unwrap();
                last.push(r);
            }
        }
    });
    for (w, l) in warm.iter().zip(&last) {
        assert_eq!(w.baseline_makespan.to_bits(), l.baseline_makespan.to_bits());
        assert_eq!(w.hypothetical_makespan.to_bits(), l.hypothetical_makespan.to_bits());
    }
}

#[test]
fn plan_adoption_allocates_nothing_after_warmup() {
    // The runner's plan-replacement path: adopting a new plan into the
    // per-resource execution queues must reuse the queue buffers (ISSUE 5
    // satellite — previously every adoption rebuilt Vec<Vec<_>> from
    // scratch).
    let _serial = SERIAL.lock().unwrap();
    let (dag, costs, snap, alive) = midrun_instance(120, 16);
    let initial = aheft_reschedule(
        &dag,
        &costs,
        &aheft::gridsim::executor::Snapshot::initial(16),
        &alive,
        &AheftConfig::default(),
    );
    let midrun = aheft_reschedule(&dag, &costs, &snap, &alive, &AheftConfig::default());
    let mut queues = PlanQueues::new();
    // Warm-up: queue buffers grow to the larger of the two plans.
    queues.adopt(&initial.plan, 16);
    queues.adopt(&midrun.plan, 16);
    assert_alloc_free("plan adoption", || {
        // Alternate plans so every adoption genuinely rewrites the queues.
        queues.adopt(&initial.plan, 16);
        queues.adopt(&midrun.plan, 16);
    });
}

#[test]
fn planner_keep_evaluation_allocates_nothing_after_warmup() {
    // The runner's per-event path: planner evaluation ending in `Keep`
    // (the overwhelmingly common case across a sweep) must be free.
    let _serial = SERIAL.lock().unwrap();
    let (dag, costs, snap, alive) = midrun_instance(80, 8);
    let mut planner = AdaptivePlanner::new(AheftConfig::default(), ReschedulePolicy::default());
    planner.initial_plan(&dag, &costs);
    // Warm up the evaluation path (first call may also accept; later
    // identical candidates are always Keep).
    planner.evaluate(&dag, &costs, snap.view(), &alive);
    planner.evaluate(&dag, &costs, snap.view(), &alive);
    assert_alloc_free("Keep evaluation", || {
        for _ in 0..10 {
            let decision = planner.evaluate(&dag, &costs, snap.view(), &alive);
            assert!(matches!(decision, Decision::Keep { .. }), "identical candidate must be kept");
        }
    });
}
