//! Integration tests of the grid-dynamics substrate seen through full runs:
//! pool caps, growth accounting, and the determinism of paired comparisons.

use aheft::core::runner::{run_aheft_with, RunConfig};
use aheft::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn blast(n: usize, seed: u64) -> (GeneratedWorkflow, CostTable) {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = AppDagParams { parallelism: n, ..AppDagParams::paper_default() };
    let wf = aheft::workflow::generators::blast::generate(&params, &mut rng);
    let costs = wf.sample_table(6, &mut rng);
    (wf, costs)
}

#[test]
fn pool_cap_limits_growth() {
    let (wf, costs) = blast(40, 1);
    let capped = PoolDynamics::periodic_growth(6, 200.0, 0.5).with_cap(10);
    let report = run_aheft(&wf.dag, &costs, &wf.costgen, &capped, 1);
    assert!(report.final_pool_size <= 10, "cap violated: {}", report.final_pool_size);
}

#[test]
fn uncapped_growth_tracks_delta_schedule() {
    let (wf, costs) = blast(40, 2);
    let dynamics = PoolDynamics::periodic_growth(6, 400.0, 0.5); // +3 every 400
    let report = run_aheft(&wf.dag, &costs, &wf.costgen, &dynamics, 2);
    // Joins happen at 400, 800, ... while the workflow runs; the pool must
    // have grown accordingly: initial + 3 * floor(makespan / 400) within one
    // batch of slack (the batch that fires exactly at completion time may or
    // may not be processed).
    let batches = (report.makespan / 400.0).floor() as usize;
    let expect = 6 + 3 * batches;
    assert!(
        report.final_pool_size >= expect.saturating_sub(3) && report.final_pool_size <= expect + 3,
        "pool {} vs expected ~{}",
        report.final_pool_size,
        expect
    );
}

#[test]
fn paired_runs_see_identical_grids() {
    // The paired methodology: HEFT and AHEFT on the same seed must observe
    // the same late-arrival columns. We verify via a proxy — running AHEFT
    // twice gives identical results, and static HEFT's makespan is
    // independent of the growth events it ignores.
    let (wf, costs) = blast(30, 3);
    let dynamics = PoolDynamics::periodic_growth(6, 300.0, 0.25);
    let a1 = run_aheft(&wf.dag, &costs, &wf.costgen, &dynamics, 7);
    let a2 = run_aheft(&wf.dag, &costs, &wf.costgen, &dynamics, 7);
    assert_eq!(a1.makespan, a2.makespan);
    assert_eq!(a1.reschedules, a2.reschedules);
    let h_growing = run_static_heft(&wf.dag, &costs, &wf.costgen, &dynamics, 7);
    let h_fixed = run_static_heft(&wf.dag, &costs, &wf.costgen, &PoolDynamics::fixed(6), 7);
    assert!((h_growing.makespan - h_fixed.makespan).abs() < 1e-9);
}

#[test]
fn reschedule_counts_are_bounded_by_events() {
    let (wf, costs) = blast(60, 4);
    let dynamics = PoolDynamics::periodic_growth(6, 250.0, 0.25);
    let cfg = RunConfig { record_trace: true, ..Default::default() };
    let report = run_aheft_with(&wf.dag, &costs, &wf.costgen, &dynamics, 4, &cfg);
    assert!(report.reschedules <= report.evaluations);
    // Every accepted reschedule appears in the trace.
    assert_eq!(report.trace.reschedule_count(), report.reschedules);
    // All jobs completed exactly once.
    assert_eq!(report.trace.completed_intervals().len(), wf.dag.job_count());
}

#[test]
fn makespan_decreases_monotonically_with_faster_growth() {
    // More aggressive growth can never hurt AHEFT *on average*; check a
    // paired instance across three growth fractions (same seed = same DAG
    // and initial pool; arrival columns differ, so allow tiny slack).
    let (wf, costs) = blast(80, 5);
    let mut last = f64::INFINITY;
    for frac in [0.0, 0.25, 0.5] {
        let dynamics = if frac == 0.0 {
            PoolDynamics::fixed(6)
        } else {
            PoolDynamics::periodic_growth(6, 300.0, frac)
        };
        let report = run_aheft(&wf.dag, &costs, &wf.costgen, &dynamics, 5);
        assert!(
            report.makespan <= last * 1.02,
            "fraction {frac}: {} vs previous {last}",
            report.makespan
        );
        last = report.makespan;
    }
}
