//! Property gate for ISSUE 9's intra-pass parallelism and tiled kernels:
//! over random DAGs, pools, mid-run snapshots (finished jobs, committed
//! transfers, running jobs) and thread counts, one scheduling pass must
//! produce **byte-identical** results — same assignment sequence, same
//! f64 bit patterns, same predicted makespan — regardless of
//!
//! * the kernel mode ([`KernelMode::ForceBaseline`] = the pre-tiling code
//!   path, `Auto` = size-gated, `ForceTiled` = row-major mirror forced on),
//! * the worker count (`threads = N` vs the sequential `threads = 1`),
//! * whether the parallel paths are forced onto tiny instances (par-min
//!   thresholds dropped to 1, so the pool machinery really runs).
//!
//! A second gate runs whole simulated executions (pool growth, planner
//! replacements, transfer re-routing) and compares every observable of the
//! run including the full trace hash.

use aheft::core::aheft::{
    aheft_reschedule_with, AheftConfig, KernelMode, ReschedulableSet, ScheduleWorkspace,
};
use aheft::core::runner::{run_policy, RunConfig, RunReport};
use aheft::core::PlannedPolicy;
use aheft::gridsim::executor::Snapshot;
use aheft::gridsim::plan::Assignment;
use aheft::gridsim::reservation::SlotPolicy;
use aheft::prelude::*;
use aheft::workflow::generators::random::{generate, RandomDagParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A workspace tuned so *every* parallel/tiled path actually executes,
/// even on instances far below the production size gates.
fn forced_workspace(kernel: KernelMode, threads: usize) -> ScheduleWorkspace {
    let mut ws = ScheduleWorkspace::new();
    ws.set_kernel_mode(kernel);
    ws.set_threads(threads);
    ws.set_eft_par_min(1);
    ws.set_rank_par_min(1);
    ws
}

/// Byte-exact assignment comparison (f64 compared by bit pattern).
fn assert_identical(label: &str, a: &[Assignment], b: &[Assignment]) {
    assert_eq!(a.len(), b.len(), "{label}: plan lengths differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.job, y.job, "{label}: placement order diverged");
        assert_eq!(x.resource, y.resource, "{label}: {} placed differently", x.job);
        assert_eq!(x.start.to_bits(), y.start.to_bits(), "{label}: {} start bits", x.job);
        assert_eq!(x.finish.to_bits(), y.finish.to_bits(), "{label}: {} finish bits", x.job);
    }
}

/// Fabricate a plausible mid-run snapshot: a topo prefix finished (spread
/// over resources, with committed transfers for some out-edges), a couple
/// of jobs running, the rest waiting.
fn fabricate_snapshot(
    dag: &Dag,
    costs: &CostTable,
    resources: usize,
    rng: &mut StdRng,
) -> Snapshot {
    let clock = 100.0 + rng.random_range(0.0..200.0);
    let mut snap = Snapshot::initial(resources);
    snap.clock = clock;
    snap.resource_avail = vec![clock; resources];
    let done = rng.random_range(0..=dag.job_count() / 2);
    let topo: Vec<JobId> = dag.topo_order().to_vec();
    for (k, &j) in topo.iter().take(done).enumerate() {
        let r = ResourceId::from(k % resources);
        let aft = clock * (0.2 + 0.6 * (k as f64 / done.max(1) as f64));
        snap.set_finished(j, r, aft);
        for &(_, e) in dag.succs(j) {
            if rng.random_range(0.0..1.0) < 0.5 {
                let dest = ResourceId::from(rng.random_range(0..resources));
                snap.add_transfer(e, dest, aft + costs.comm(e));
            }
        }
    }
    let mut running = 0;
    for &j in topo.iter().skip(done) {
        if running >= 2 {
            break;
        }
        if dag.preds(j).iter().all(|&(p, _)| snap.is_finished(p)) {
            let r = ResourceId::from(rng.random_range(0..resources));
            snap.set_running(j, r, clock - 5.0, clock + rng.random_range(1.0..50.0));
            running += 1;
        }
    }
    snap
}

fn arb_instance() -> impl Strategy<Value = (usize, usize, f64, u64)> {
    (
        4usize..80,                                   // jobs
        2usize..20,                                   // resources
        prop_oneof![Just(0.1), Just(1.0), Just(5.0)], // ccr
        0u64..1_000_000,                              // seed
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedules_identical_across_kernels_and_threads(
        (jobs, resources, ccr, seed) in arb_instance()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = RandomDagParams { jobs, ccr, ..RandomDagParams::paper_default() };
        let wf = generate(&p, &mut rng);
        let costs = wf.sample_table(resources, &mut rng);
        let snap = fabricate_snapshot(&wf.dag, &costs, resources, &mut rng);
        // Pool subset: drop one resource on odd seeds (a departed resource).
        let alive: Vec<ResourceId> = (0..resources)
            .filter(|&r| !(seed % 2 == 1 && r == seed as usize % resources))
            .map(ResourceId::from)
            .collect();
        for config in [
            AheftConfig::default(),
            AheftConfig { slot_policy: SlotPolicy::EndOfQueue, ..Default::default() },
            AheftConfig { reschedulable: ReschedulableSet::NotStarted, ..Default::default() },
        ] {
            let mut base_ws = forced_workspace(KernelMode::ForceBaseline, 1);
            let base =
                aheft_reschedule_with(&wf.dag, &costs, snap.view(), &alive, &config, &mut base_ws);
            for (kernel, threads) in [
                (KernelMode::Auto, 1),
                (KernelMode::ForceTiled, 1),
                (KernelMode::ForceTiled, 2),
                (KernelMode::ForceTiled, 4),
                (KernelMode::Auto, 3),
            ] {
                let mut ws = forced_workspace(kernel, threads);
                let got =
                    aheft_reschedule_with(&wf.dag, &costs, snap.view(), &alive, &config, &mut ws);
                let label = format!("{kernel:?}/threads={threads}/{config:?}");
                assert_identical(&label, base.plan.assignments(), got.plan.assignments());
                prop_assert_eq!(
                    base.predicted_makespan.to_bits(),
                    got.predicted_makespan.to_bits(),
                    "{}: predicted makespan bits", label
                );
                // A second pass through the now-warm workspace (mirror and
                // level caches hit) must not drift either.
                let again =
                    aheft_reschedule_with(&wf.dag, &costs, snap.view(), &alive, &config, &mut ws);
                assert_identical(&format!("{label}/warm"), base.plan.assignments(),
                    again.plan.assignments());
            }
        }
    }
}

/// FNV-1a over the debug rendering of every trace record, in order.
fn trace_hash(report: &RunReport) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for ev in report.trace.events() {
        for b in format!("{ev:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[test]
fn end_to_end_runs_identical_across_threads() {
    // Whole simulated executions — pool growth, planner evaluations, plan
    // replacements, aborts, transfer re-routing — under threads ∈ {1, 2, 4}
    // with every parallel path forced on, compared on every observable
    // including the trace.
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(7000 + seed);
        let p = RandomDagParams { jobs: 40, ..RandomDagParams::paper_default() };
        let wf = generate(&p, &mut rng);
        let costs = wf.sample_table(5, &mut rng);
        let dynamics = PoolDynamics::periodic_growth(5, 250.0, 0.2);
        let mut reports = Vec::new();
        for threads in [1usize, 2, 4] {
            let cfg = RunConfig { record_trace: true, threads, ..Default::default() };
            let mut pol = PlannedPolicy::adaptive(&cfg);
            let ws = pol.planner_mut().workspace_mut();
            ws.set_kernel_mode(KernelMode::ForceTiled);
            ws.set_eft_par_min(1);
            ws.set_rank_par_min(1);
            let r = run_policy(&wf.dag, &costs, &wf.costgen, &dynamics, seed, &cfg, &mut pol);
            reports.push((threads, r));
        }
        let (_, base) = &reports[0];
        for (threads, r) in &reports[1..] {
            assert_eq!(
                base.makespan.to_bits(),
                r.makespan.to_bits(),
                "seed {seed}: makespan diverged at threads={threads}"
            );
            assert_eq!(base.reschedules, r.reschedules, "seed {seed} threads={threads}");
            assert_eq!(base.evaluations, r.evaluations, "seed {seed} threads={threads}");
            assert_eq!(base.aborted_jobs, r.aborted_jobs, "seed {seed} threads={threads}");
            assert_eq!(base.events_processed, r.events_processed, "seed {seed} threads={threads}");
            assert_eq!(
                trace_hash(base),
                trace_hash(r),
                "seed {seed}: trace diverged at threads={threads}"
            );
        }
    }
}
