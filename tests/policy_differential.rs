//! Differential gate for the policy-generic engine refactor (ISSUE 5).
//!
//! The tentpole collapsed `run_planned` + `run_dynamic_loop` into ONE
//! generic `run_policy` event pump driving pluggable [`SchedulingPolicy`]
//! implementations. This suite pins that the rework is behaviour-preserving
//! **bit for bit**: the golden fingerprints below were captured from the
//! pre-refactor entry points (commit 413c3d4) over a seed grid covering all
//! three paper strategies, both reschedulable-set modes, both slot
//! policies, periodic/variance triggers, failure injection and the extra
//! dynamic heuristics.
//!
//! ISSUE 7 intentionally re-captured the `*-fail` rows (failure times are
//! now drawn from a dedicated fault RNG stream, so fault-free behaviour is
//! untouched but failure timing shifted) and added one `{policy}-chaos`
//! scenario per registered policy: transient failures with repair, job
//! crash faults, and a rotating recovery policy.
//!
//! A fingerprint folds every observable of a [`RunReport`]: makespan and
//! initial-prediction f64 *bits*, evaluation/reschedule/abort counters,
//! final pool size, processed event count, and an FNV-1a hash over the full
//! execution trace (`record_trace = true`), so even a reordering of two
//! same-timestamp trace records fails the gate.
//!
//! ISSUE 8 added `SERVICE_GOLDEN`: fingerprints of whole multi-tenant
//! *service* runs (per-tenant latency percentile bits + an FNV-1a hash of
//! the admission/preemption event trace) pinning the outer arrival /
//! fairness / shared-pool layer the same way `GOLDEN` pins the inner
//! engine.
//!
//! To regenerate after an *intentional* semantic change, run
//! `GOLDEN_PRINT=1 cargo test --test policy_differential -- --nocapture`
//! and replace the `GOLDEN` (and/or `SERVICE_GOLDEN`) table.

use aheft::core::aheft::{AheftConfig, ReschedulableSet};
use aheft::core::planner::ReschedulePolicy;
use aheft::core::runner::{
    run_aheft_with, run_dynamic_with, run_static_heft_with, RunConfig, RunReport,
};
use aheft::core::service::{
    make_fairness, run_service, ArrivalProcess, ServiceConfig, ServiceReport, FAIRNESS_NAMES,
};
use aheft::core::{
    make_recovery, run_named_policy, DynamicHeuristic, SlotPolicy, POLICY_NAMES, RECOVERY_NAMES,
};
use aheft::gridsim::fault::{FailureModel, JobFaultModel};
use aheft::gridsim::predictor::ActualModel;
use aheft::prelude::*;
use aheft::workflow::generators::random::{generate, RandomDagParams};
use aheft::workflow::sample;
use aheft::workflow::CostGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a over the debug rendering of every trace record, in order.
fn trace_hash(report: &RunReport) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for ev in report.trace.events() {
        for b in format!("{ev:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Every observable of a run, folded into a comparable string.
fn fingerprint(report: &RunReport) -> String {
    format!(
        "mk={:016x} ip={:016x} ev={} rs={} ab={} pool={} events={} trace={:016x}",
        report.makespan.to_bits(),
        report.initial_predicted.to_bits(),
        report.evaluations,
        report.reschedules,
        report.aborted_jobs,
        report.final_pool_size,
        report.events_processed,
        trace_hash(report)
    )
}

fn random_grid(
    jobs: usize,
    ccr: f64,
    resources: usize,
    seed: u64,
) -> (Dag, CostTable, CostGenerator) {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = RandomDagParams { jobs, ccr, ..RandomDagParams::paper_default() };
    let wf = generate(&p, &mut rng);
    let costs = wf.sample_table(resources, &mut rng);
    (wf.dag, costs, wf.costgen)
}

fn traced(cfg: RunConfig) -> RunConfig {
    RunConfig { record_trace: true, ..cfg }
}

/// Run every golden scenario, producing `(label, fingerprint)` in a fixed
/// order. The labels both document the scenario and key the comparison.
fn compute_fingerprints() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    let base = traced(RunConfig::default());

    // --- paper strategies over a random grid (growth dynamics) ----------
    for &ccr in &[0.8, 5.0] {
        for seed in 0..3u64 {
            let (dag, costs, costgen) = random_grid(25, ccr, 4, seed);
            let dynamics = PoolDynamics::periodic_growth(4, 300.0, 0.25);
            let label = |s: &str| format!("{s}/ccr{ccr}/seed{seed}");
            let h = run_static_heft_with(&dag, &costs, &costgen, &dynamics, seed, &base);
            out.push((label("heft"), fingerprint(&h)));
            let a = run_aheft_with(&dag, &costs, &costgen, &dynamics, seed, &base);
            out.push((label("aheft"), fingerprint(&a)));
            for (name, heur) in [
                ("minmin", DynamicHeuristic::MinMin),
                ("maxmin", DynamicHeuristic::MaxMin),
                ("sufferage", DynamicHeuristic::Sufferage),
            ] {
                let d = run_dynamic_with(&dag, &costs, &costgen, &dynamics, seed, &base, heur);
                out.push((label(name), fingerprint(&d)));
            }
        }
    }

    // --- configuration variants the new named policies must reproduce ---
    {
        let (dag, costs, costgen) = random_grid(25, 0.8, 4, 1);
        let dynamics = PoolDynamics::periodic_growth(4, 300.0, 0.25);
        let pin = traced(RunConfig {
            aheft: AheftConfig {
                reschedulable: ReschedulableSet::NotStarted,
                ..Default::default()
            },
            ..Default::default()
        });
        let r = run_aheft_with(&dag, &costs, &costgen, &dynamics, 1, &pin);
        out.push(("aheft-pin/ccr0.8/seed1".into(), fingerprint(&r)));
        let noinsert = traced(RunConfig {
            aheft: AheftConfig { slot_policy: SlotPolicy::EndOfQueue, ..Default::default() },
            ..Default::default()
        });
        let r = run_aheft_with(&dag, &costs, &costgen, &dynamics, 1, &noinsert);
        out.push(("aheft-noinsert/ccr0.8/seed1".into(), fingerprint(&r)));
        let periodic = traced(RunConfig {
            policy: ReschedulePolicy::Periodic { period: 200.0 },
            ..Default::default()
        });
        let r = run_aheft_with(&dag, &costs, &costgen, &dynamics, 1, &periodic);
        out.push(("aheft-periodic200/ccr0.8/seed1".into(), fingerprint(&r)));
    }

    // --- noisy execution + performance-variance notifications -----------
    {
        let dag = sample::fig4_dag();
        let costs = sample::fig4_costs_initial();
        let costgen = CostGenerator::new(sample::fig4_r4_column(), 0.0).unwrap();
        let cfg = traced(RunConfig {
            actual: ActualModel::Noisy { spread: 0.4 },
            variance_threshold: Some(0.2),
            policy: ReschedulePolicy::OnAnyPlannerEvent,
            ..Default::default()
        });
        for seed in [7u64, 8] {
            let r = run_aheft_with(&dag, &costs, &costgen, &PoolDynamics::fixed(3), seed, &cfg);
            out.push((format!("aheft-noisy/seed{seed}"), fingerprint(&r)));
            // Static under a Never trigger still *processes* variance events.
            let s =
                run_static_heft_with(&dag, &costs, &costgen, &PoolDynamics::fixed(3), seed, &cfg);
            out.push((format!("heft-noisy/seed{seed}"), fingerprint(&s)));
        }
    }

    // --- failure injection: forced replans, pending_forced retry --------
    {
        let dag = sample::fig4_dag();
        let costs = sample::fig4_costs_initial();
        let costgen = CostGenerator::new(sample::fig4_r4_column(), 0.0).unwrap();
        let dynamics = PoolDynamics::periodic_growth(3, 50.0, 1.0 / 3.0);
        let cfg = traced(RunConfig {
            failures: FailureModel::UniformOnce { prob: 0.5, horizon: 40.0 },
            ..Default::default()
        });
        for seed in 0..4u64 {
            let a = run_aheft_with(&dag, &costs, &costgen, &dynamics, seed, &cfg);
            out.push((format!("aheft-fail/seed{seed}"), fingerprint(&a)));
            let h = run_static_heft_with(&dag, &costs, &costgen, &dynamics, seed, &cfg);
            out.push((format!("heft-fail/seed{seed}"), fingerprint(&h)));
            // (No dynamic runs here: the JIT mapper requires an alive pool,
            // and this failure model can empty it — a pre-existing
            // limitation shared by the pre- and post-refactor engines.)
        }
    }

    // --- chaos: transient failures + crash faults + recovery policies ---
    // One scenario per registered scheduling policy, rotating through the
    // recovery registry so every (policy family, recovery family) pairing
    // is exercised somewhere in the grid.
    {
        let (dag, costs, costgen) = random_grid(25, 0.8, 4, 9);
        let dynamics = PoolDynamics::periodic_growth(4, 300.0, 0.25);
        for (i, name) in POLICY_NAMES.iter().enumerate() {
            let recovery = make_recovery(RECOVERY_NAMES[i % RECOVERY_NAMES.len()])
                .expect("registered recovery");
            let cfg = traced(RunConfig {
                failures: FailureModel::Transient { mtbf: 400.0, mttr: 80.0 },
                job_faults: JobFaultModel::CrashOnStart { prob: 0.15 },
                recovery,
                ..Default::default()
            });
            let r = run_named_policy(name, &dag, &costs, &costgen, &dynamics, 9, &cfg)
                .expect("registered policy");
            out.push((format!("{name}-chaos"), fingerprint(&r)));
        }
    }

    out
}

/// `(label, fingerprint)` pairs captured from the pre-refactor runner.
const GOLDEN: &[(&str, &str)] = &[
    ("heft/ccr0.8/seed0", "mk=40886cf351dd9fcc ip=40886cf351dd9fcc ev=0 rs=0 ab=0 pool=6 events=62 trace=0f0a0a61c5b31db2"),
    ("aheft/ccr0.8/seed0", "mk=40886cf351dd9fcc ip=40886cf351dd9fcc ev=2 rs=0 ab=0 pool=6 events=62 trace=70e487c5a4a1e68f"),
    ("minmin/ccr0.8/seed0", "mk=408fdb3a15e3e2a7 ip=0000000000000000 ev=0 rs=0 ab=0 pool=7 events=62 trace=16a997ca56d95617"),
    ("maxmin/ccr0.8/seed0", "mk=409072c63a8faee2 ip=0000000000000000 ev=0 rs=0 ab=0 pool=7 events=67 trace=37c81b3e22d95c5d"),
    ("sufferage/ccr0.8/seed0", "mk=408ec4c07ec61737 ip=0000000000000000 ev=0 rs=0 ab=0 pool=7 events=69 trace=f81a8e4e02dbf9b2"),
    ("heft/ccr0.8/seed1", "mk=40866b9e15317d71 ip=40866b9e15317d71 ev=0 rs=0 ab=0 pool=6 events=57 trace=7b1fa709c3c5e7df"),
    ("aheft/ccr0.8/seed1", "mk=40866b9e15317d71 ip=40866b9e15317d71 ev=2 rs=0 ab=0 pool=6 events=57 trace=fda245368d9a233b"),
    ("minmin/ccr0.8/seed1", "mk=40916b327fda922a ip=0000000000000000 ev=0 rs=0 ab=0 pool=7 events=60 trace=8fb53a43ce8d737c"),
    ("maxmin/ccr0.8/seed1", "mk=40901a299922dac9 ip=0000000000000000 ev=0 rs=0 ab=0 pool=7 events=58 trace=61cc7c0e9a2aaf28"),
    ("sufferage/ccr0.8/seed1", "mk=408f6796292fbcba ip=0000000000000000 ev=0 rs=0 ab=0 pool=7 events=57 trace=88a9c920a95c3a9d"),
    ("heft/ccr0.8/seed2", "mk=4085db31f7d47b35 ip=4085db31f7d47b35 ev=0 rs=0 ab=0 pool=6 events=66 trace=47233986a3e49ab1"),
    ("aheft/ccr0.8/seed2", "mk=4084734264f1deac ip=4085db31f7d47b35 ev=2 rs=1 ab=3 pool=6 events=73 trace=fc1a8d873b337933"),
    ("minmin/ccr0.8/seed2", "mk=408bf0e63b4a6b24 ip=0000000000000000 ev=0 rs=0 ab=0 pool=6 events=64 trace=905a012670fe225e"),
    ("maxmin/ccr0.8/seed2", "mk=4089af7d1e5b4049 ip=0000000000000000 ev=0 rs=0 ab=0 pool=6 events=70 trace=5db92c88cc61dfea"),
    ("sufferage/ccr0.8/seed2", "mk=408c00c52f9e67ae ip=0000000000000000 ev=0 rs=0 ab=0 pool=6 events=64 trace=8c25efabf6f7adf2"),
    ("heft/ccr5/seed0", "mk=409864ebccad01b3 ip=409864ebccad01b3 ev=0 rs=0 ab=0 pool=9 events=62 trace=7bc32dad7f290401"),
    ("aheft/ccr5/seed0", "mk=409864ebccad01b3 ip=409864ebccad01b3 ev=5 rs=0 ab=0 pool=9 events=62 trace=1439d5b77e39d69d"),
    ("minmin/ccr5/seed0", "mk=40a29e2edaa0a886 ip=0000000000000000 ev=0 rs=0 ab=0 pool=11 events=64 trace=694085656ba969a3"),
    ("maxmin/ccr5/seed0", "mk=40a2ec92b979a4e7 ip=0000000000000000 ev=0 rs=0 ab=0 pool=12 events=65 trace=4ce9c31284edac4f"),
    ("sufferage/ccr5/seed0", "mk=40a22d1c76d0144e ip=0000000000000000 ev=0 rs=0 ab=0 pool=11 events=65 trace=b965f0807e15abbd"),
    ("heft/ccr5/seed1", "mk=4097867b9a3b43b0 ip=4097867b9a3b43b0 ev=0 rs=0 ab=0 pool=9 events=55 trace=fb49252ec80410ad"),
    ("aheft/ccr5/seed1", "mk=4097867b9a3b43b0 ip=4097867b9a3b43b0 ev=5 rs=0 ab=0 pool=9 events=55 trace=eb5572aa8e23cb1b"),
    ("minmin/ccr5/seed1", "mk=40a7bf66d5144a7c ip=0000000000000000 ev=0 rs=0 ab=0 pool=14 events=60 trace=df6bfc1ef79c279a"),
    ("maxmin/ccr5/seed1", "mk=40a4ee541dd37e86 ip=0000000000000000 ev=0 rs=0 ab=0 pool=12 events=57 trace=1269f69cf4d4b06a"),
    ("sufferage/ccr5/seed1", "mk=40a59d3ac08bb394 ip=0000000000000000 ev=0 rs=0 ab=0 pool=13 events=61 trace=3a3d62aadef670f9"),
    ("heft/ccr5/seed2", "mk=4099f27bbe35ce9c ip=4099f27bbe35ce9c ev=0 rs=0 ab=0 pool=9 events=63 trace=aea4cb6069188743"),
    ("aheft/ccr5/seed2", "mk=4099f27bbe35ce9c ip=4099f27bbe35ce9c ev=5 rs=0 ab=0 pool=9 events=63 trace=6aac48ef39c37c44"),
    ("minmin/ccr5/seed2", "mk=40a12c701245a9b1 ip=0000000000000000 ev=0 rs=0 ab=0 pool=11 events=65 trace=390558b5de1faf68"),
    ("maxmin/ccr5/seed2", "mk=40a1095494f04983 ip=0000000000000000 ev=0 rs=0 ab=0 pool=11 events=70 trace=c33616c4b6102e81"),
    ("sufferage/ccr5/seed2", "mk=40a16ab98f3534dd ip=0000000000000000 ev=0 rs=0 ab=0 pool=11 events=65 trace=295b87b5ef5eb646"),
    ("aheft-pin/ccr0.8/seed1", "mk=40866b9e15317d71 ip=40866b9e15317d71 ev=2 rs=0 ab=0 pool=6 events=57 trace=255792e0b45c4ac4"),
    ("aheft-noinsert/ccr0.8/seed1", "mk=40866b9e15317d71 ip=40866b9e15317d71 ev=2 rs=0 ab=0 pool=6 events=58 trace=fa9dbf271e696b0a"),
    ("aheft-periodic200/ccr0.8/seed1", "mk=40866b9e15317d71 ip=40866b9e15317d71 ev=3 rs=0 ab=0 pool=6 events=60 trace=16147764a0b08a0a"),
    ("aheft-noisy/seed7", "mk=405399a13bfbda1e ip=4054000000000000 ev=4 rs=1 ab=1 pool=3 events=23 trace=fb0777ab4fc72bb5"),
    ("heft-noisy/seed7", "mk=4053b72035612af9 ip=4054000000000000 ev=0 rs=0 ab=0 pool=3 events=23 trace=3bc199a7d559127a"),
    ("aheft-noisy/seed8", "mk=4054a346fd258421 ip=4054000000000000 ev=1 rs=0 ab=0 pool=3 events=20 trace=7014dced15a3293a"),
    ("heft-noisy/seed8", "mk=4054a346fd258421 ip=4054000000000000 ev=0 rs=0 ab=0 pool=3 events=20 trace=aaf4a014263f8e8f"),
    ("aheft-fail/seed0", "mk=4058252607d03f42 ip=4054000000000000 ev=2 rs=1 ab=2 pool=4 events=19 trace=6f598b13e29ab408"),
    ("heft-fail/seed0", "mk=4058252607d03f42 ip=4054000000000000 ev=1 rs=1 ab=2 pool=4 events=19 trace=f897f0e8b70fb709"),
    ("aheft-fail/seed1", "mk=4054000000000000 ip=4054000000000000 ev=1 rs=0 ab=0 pool=4 events=20 trace=84d53f0b5110db46"),
    ("heft-fail/seed1", "mk=4054000000000000 ip=4054000000000000 ev=0 rs=0 ab=0 pool=4 events=20 trace=b88a74d845452e42"),
    ("aheft-fail/seed2", "mk=4054000000000000 ip=4054000000000000 ev=1 rs=0 ab=0 pool=4 events=20 trace=84d53f0b5110db46"),
    ("heft-fail/seed2", "mk=4054000000000000 ip=4054000000000000 ev=0 rs=0 ab=0 pool=4 events=20 trace=b88a74d845452e42"),
    ("aheft-fail/seed3", "mk=406296bc5909012d ip=4054000000000000 ev=4 rs=2 ab=3 pool=5 events=20 trace=26c28722e86d9124"),
    ("heft-fail/seed3", "mk=406296bc5909012d ip=4054000000000000 ev=2 rs=2 ab=3 pool=5 events=20 trace=50c0badd8b40ede8"),
    ("heft-chaos", "mk=4092af0b1ad1064e ip=4080d878a9c5be98 ev=9 rs=9 ab=28 pool=7 events=151 trace=c81c6ac9bb5b096b"),
    ("aheft-chaos", "mk=409777be96e8589e ip=4080d878a9c5be98 ev=32 rs=11 ab=28 pool=9 events=201 trace=7150a35ffdde7a57"),
    ("minmin-chaos", "mk=4090a58742650223 ip=0000000000000000 ev=0 rs=0 ab=9 pool=7 events=115 trace=0cf56dc08dd029b8"),
    ("maxmin-chaos", "mk=4091461234168815 ip=0000000000000000 ev=0 rs=0 ab=7 pool=7 events=148 trace=51173fbff0009dda"),
    ("sufferage-chaos", "mk=40903497c57ae009 ip=0000000000000000 ev=0 rs=0 ab=7 pool=7 events=99 trace=2917084b33fef932"),
    ("aheft-noinsert-chaos", "mk=40a51024868485f1 ip=408216543afece65 ev=74 rs=25 ab=63 pool=12 events=319 trace=08eb4ed8a2733716"),
    ("aheft-pin-chaos", "mk=408aa08d168cb42d ip=4080d878a9c5be98 ev=12 rs=4 ab=7 pool=6 events=122 trace=9ab5ed892499ae67"),
    ("ranked-jit-chaos", "mk=40949c61f47cc288 ip=0000000000000000 ev=0 rs=0 ab=10 pool=8 events=116 trace=d8c3c84ffb6d3883"),
];

#[test]
fn trait_driven_engine_matches_prerefactor_fingerprints() {
    let got = compute_fingerprints();
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        for (label, fp) in &got {
            println!("    (\"{label}\", \"{fp}\"),");
        }
        return;
    }
    assert_eq!(GOLDEN.len(), got.len(), "scenario grid changed; regenerate the golden table");
    for ((glabel, gfp), (label, fp)) in GOLDEN.iter().zip(&got) {
        assert_eq!(glabel, label, "scenario order changed; regenerate the golden table");
        assert_eq!(
            gfp, fp,
            "{label}: run diverged from the pre-refactor engine\n  golden: {gfp}\n  got:    {fp}"
        );
    }
}

// ---------------------------------------------------------------------
// Multi-tenant service fingerprints (ISSUE 8)
// ---------------------------------------------------------------------

/// Every observable of a service run folded into a comparable string:
/// admission/completion counters, pool utilization bits, per-tenant
/// latency percentile *bits*, and an FNV-1a hash over the debug rendering
/// of the full admission/start/preemption/finish event trace — so even a
/// reordering of two same-time service events fails the gate.
fn service_fingerprint(r: &ServiceReport) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for ev in &r.trace {
        for b in format!("{ev:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    let mut out = format!(
        "adm={} fin={} fail={} inflight={} pre={} util={:016x}",
        r.admitted,
        r.finished,
        r.failed,
        r.in_flight,
        r.preemptions,
        r.utilization.to_bits()
    );
    for t in &r.tenants {
        out.push_str(&format!(
            " t{}=p50:{:016x}/p99:{:016x}",
            t.tenant,
            t.p50_latency.to_bits(),
            t.p99_latency.to_bits()
        ));
    }
    out.push_str(&format!(" trace={h:016x}"));
    out
}

/// One fault-free and one chaos service scenario per fairness policy.
fn compute_service_fingerprints() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for fairness in FAIRNESS_NAMES {
        let calm = ServiceConfig {
            tenants: 2,
            arrivals: ArrivalProcess::Poisson { rate: 0.004 },
            workflows: 6,
            capacity: 4,
            slice: 2,
            fairness: make_fairness(fairness).expect("registered fairness"),
            workload: RandomDagParams { jobs: 12, ..RandomDagParams::paper_default() },
            seed: 11,
            ..ServiceConfig::default()
        };
        out.push((format!("service-{fairness}-calm"), service_fingerprint(&run_service(&calm))));
        let chaos = ServiceConfig {
            tenants: 3,
            arrivals: ArrivalProcess::Trace(vec![0.0, 40.0, 80.0, 120.0, 500.0, 900.0]),
            run: RunConfig {
                failures: FailureModel::Transient { mtbf: 400.0, mttr: 80.0 },
                job_faults: JobFaultModel::CrashOnStart { prob: 0.10 },
                recovery: make_recovery("retry").expect("registered recovery"),
                ..RunConfig::default()
            },
            seed: 12,
            ..calm
        };
        out.push((format!("service-{fairness}-chaos"), service_fingerprint(&run_service(&chaos))));
    }
    out
}

/// `(label, fingerprint)` pairs captured when the service layer landed.
const SERVICE_GOLDEN: &[(&str, &str)] = &[
    ("service-fcfs-calm", "adm=6 fin=6 fail=0 inflight=0 pre=0 util=3fe478ae2ede155e t0=p50:40821b2b14ec1dab/p99:40932f09bdcc5fe7 t1=p50:4092f06b8f049b1e/p99:409dd080fde0d907 trace=fa81a0ae07c97e34"),
    ("service-fcfs-chaos", "adm=6 fin=6 fail=0 inflight=0 pre=0 util=3feb4eaa88b2c68f t0=p50:40a80b7639b783f2/p99:40b009f27982fc58 t1=p50:0000000000000000/p99:0000000000000000 t2=p50:4097bff4ae3c96fd/p99:40aa1c2845a89dfc trace=e215f87cd442111d"),
    ("service-fair-share-calm", "adm=6 fin=6 fail=0 inflight=0 pre=0 util=3fe500202f90bc0e t0=p50:40821b2b14ec1dab/p99:409edb43a0f5a917 t1=p50:409169ca83865174/p99:409224471ab78fd7 trace=43c9efdc4f356cd3"),
    ("service-fair-share-chaos", "adm=6 fin=6 fail=0 inflight=0 pre=0 util=3fed14a1a150361c t0=p50:40a1a63d23052d9d/p99:40a74df9d0628850 t1=p50:0000000000000000/p99:0000000000000000 t2=p50:4097bff4ae3c96fd/p99:40b1e4b0ae2d7a28 trace=1a2075aa75ee6f1c"),
    ("service-priority-calm", "adm=6 fin=6 fail=0 inflight=0 pre=0 util=3fe478ae2ede155e t0=p50:40821b2b14ec1dab/p99:40932f09bdcc5fe7 t1=p50:4092f06b8f049b1e/p99:409dd080fde0d907 trace=fa81a0ae07c97e34"),
    ("service-priority-chaos", "adm=6 fin=6 fail=0 inflight=0 pre=2 util=3fef67b36d84ecb6 t0=p50:40951fc673151760/p99:40a0379fe6e7e664 t1=p50:0000000000000000/p99:0000000000000000 t2=p50:40b18fcd1f0318f1/p99:40b19be0775ba560 trace=bf4c561958bd0997"),
];

#[test]
fn multitenant_service_matches_golden_fingerprints() {
    let got = compute_service_fingerprints();
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        for (label, fp) in &got {
            println!("    (\"{label}\", \"{fp}\"),");
        }
        return;
    }
    assert_eq!(
        SERVICE_GOLDEN.len(),
        got.len(),
        "service scenario grid changed; regenerate the golden table"
    );
    for ((glabel, gfp), (label, fp)) in SERVICE_GOLDEN.iter().zip(&got) {
        assert_eq!(glabel, label, "service scenario order changed; regenerate the golden table");
        assert_eq!(
            gfp, fp,
            "{label}: service run diverged from the golden capture\n  golden: {gfp}\n  got:    {fp}"
        );
    }
}
