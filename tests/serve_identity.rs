//! Byte-identity gate for the ISSUE 10 query service.
//!
//! A response stream must be a pure function of the *request stream*:
//! batch boundaries, worker counts, and the warm state of whichever
//! per-worker [`ScheduleWorkspace`] evaluated a cache miss must never
//! change a single output byte. The proptest below replays random query
//! logs (reads mixed with state-changing deltas) through engines at every
//! thread count × random batch split and compares the whole response
//! stream against the sequential line-at-a-time golden run.
//!
//! `GOLDEN_RESPONSES` then pins the *content*, not just the invariance:
//! an FNV-1a fingerprint of the full response stream for a fixed query
//! log over the fixed demo scenario, in the style of
//! `tests/policy_differential.rs`. To regenerate after an *intentional*
//! protocol or scheduling change, run
//! `GOLDEN_PRINT=1 cargo test --test serve_identity -- --nocapture`
//! and replace the constant.

use aheft_serve::engine::QueryEngine;
use aheft_serve::scenario::ScenarioParams;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const JOBS: usize = 60;
const RESOURCES: usize = 6;

fn engine(threads: usize) -> QueryEngine {
    QueryEngine::new(
        ScenarioParams { jobs: JOBS, resources: RESOURCES, seed: 11, finished: 0.5 }.build(),
        threads,
    )
}

/// The query alphabet: `kind` indexes pick deterministic request lines,
/// mixing every read op, cache-hitting repeats, state-changing deltas,
/// rejected requests, and unparsable garbage.
fn line_for(kind: usize, i: usize) -> String {
    let id = i as u64 + 1;
    match kind % 10 {
        0 => format!(r#"{{"id":{id},"op":"info"}}"#),
        1 => format!(r#"{{"id":{id},"op":"replan"}}"#),
        2 => format!(r#"{{"id":{id},"op":"replan","policy":"heft"}}"#),
        3 => format!(r#"{{"id":{id},"op":"whatif","remove":[{}]}}"#, i % RESOURCES),
        4 => format!(
            r#"{{"id":{id},"op":"whatif","remove":[{},{}]}}"#,
            i % RESOURCES,
            (i + 2) % RESOURCES
        ),
        5 => {
            let col = vec!["25"; JOBS].join(",");
            format!(r#"{{"id":{id},"op":"whatif","add":[[{col}]]}}"#)
        }
        6 => format!(r#"{{"id":{id},"op":"place","job":{}}}"#, (i * 7) % JOBS),
        7 => format!(r#"{{"id":{id},"op":"delta","event":"clock","clock":{}}}"#, 600 + i),
        8 => format!(r#"{{"id":{id},"op":"whatif","policy":"minmin"}}"#),
        _ => format!("garbage line {id}"),
    }
}

/// The reference stream: a fresh sequential engine fed one line at a time.
fn golden_run(lines: &[String]) -> String {
    let e = engine(1);
    let mut out = String::new();
    for l in lines {
        e.process_line(l, &mut out);
    }
    out
}

/// Split `lines` into batches whose sizes cycle through `cuts`.
fn replay_split(lines: &[String], threads: usize, cuts: &[usize]) -> String {
    let e = engine(threads);
    let mut out = String::new();
    let mut i = 0;
    let mut c = 0;
    while i < lines.len() {
        let step = cuts[c % cuts.len()].max(1);
        c += 1;
        let end = (i + step).min(lines.len());
        e.process_batch(lines[i..end].iter().map(String::as_str), &mut out);
        i = end;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaving of the log into batches, at any worker count,
    /// yields the exact bytes of the sequential reference run.
    #[test]
    fn response_stream_is_invariant_under_batching_and_threads(
        (seed, n, ncuts) in (0u64..1_000_000, 1usize..32, 1usize..5)
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kinds: Vec<usize> = (0..n).map(|_| rng.random_range(0..10)).collect();
        let cuts: Vec<usize> = (0..ncuts).map(|_| rng.random_range(1..6)).collect();
        let lines: Vec<String> =
            kinds.iter().enumerate().map(|(i, &k)| line_for(k, i)).collect();
        let golden = golden_run(&lines);
        for threads in [1usize, 2, 4] {
            let got = replay_split(&lines, threads, &cuts);
            prop_assert_eq!(
                &got, &golden,
                "threads={} cuts={:?} kinds={:?} diverged from sequential bytes",
                threads, &cuts, &kinds
            );
        }
    }
}

// ---------------------------------------------------------------------
// Golden response fingerprints (content pin, not just invariance)
// ---------------------------------------------------------------------

/// FNV-1a over the raw response bytes — same idiom as the differential
/// trace hashes.
fn stream_hash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A fixed log walking every op through two scenario versions.
fn golden_log() -> Vec<String> {
    let col = vec!["30"; JOBS].join(",");
    vec![
        r#"{"id":1,"op":"info"}"#.into(),
        r#"{"id":2,"op":"replan"}"#.into(),
        r#"{"id":3,"op":"replan","policy":"heft"}"#.into(),
        r#"{"id":4,"op":"whatif","remove":[2]}"#.into(),
        r#"{"id":5,"op":"whatif","remove":[0,4]}"#.into(),
        format!(r#"{{"id":6,"op":"whatif","add":[[{col}]]}}"#),
        format!(r#"{{"id":7,"op":"whatif","add":[[{col}]],"remove":[1]}}"#),
        r#"{"id":8,"op":"place","job":45}"#.into(),
        r#"{"id":9,"op":"whatif","policy":"minmin"}"#.into(),
        r#"{"id":10,"op":"delta","event":"left","resource":3}"#.into(),
        r#"{"id":11,"op":"replan"}"#.into(),
        r#"{"id":12,"op":"whatif","remove":[2]}"#.into(),
        r#"{"id":13,"op":"delta","event":"clock","clock":777.5}"#.into(),
        r#"{"id":14,"op":"info"}"#.into(),
        r#"{"id":15,"op":"place","job":45,"policy":"aheft-noinsert"}"#.into(),
    ]
}

/// Fingerprint of the full response stream for [`golden_log`] over the
/// fixed `jobs=60/resources=6/seed=11/finished=0.5` scenario.
const GOLDEN_RESPONSES: &str = "lines=15 bytes=1456 fnv=0f2aca0478dbd9b0";

#[test]
fn golden_log_produces_pinned_response_bytes() {
    let out = golden_run(&golden_log());
    let fp =
        format!("lines={} bytes={} fnv={:016x}", out.lines().count(), out.len(), stream_hash(&out));
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!("const GOLDEN_RESPONSES: &str = \"{fp}\";");
        println!("--- full stream ---\n{out}");
        return;
    }
    assert_eq!(
        fp, GOLDEN_RESPONSES,
        "response stream diverged from the golden capture\n--- got stream ---\n{out}"
    );
}
