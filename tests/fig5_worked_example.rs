//! Integration test for the paper's worked example (Fig. 4 / Fig. 5).

use aheft::core::aheft::{aheft_reschedule, AheftConfig, ReschedulableSet};
use aheft::core::runner::{run_aheft_with, RunConfig};
use aheft::gridsim::executor::Snapshot;
use aheft::prelude::*;
use aheft::workflow::sample;

fn setup() -> (Dag, CostTable, CostGenerator) {
    let dag = sample::fig4_dag();
    let costs = sample::fig4_costs_initial();
    let costgen = CostGenerator::new(sample::fig4_r4_column(), 0.0).expect("valid");
    (dag, costs, costgen)
}

#[test]
fn heft_reproduces_fig5a_makespan_80() {
    let (dag, costs, _) = setup();
    let schedule = heft_schedule(&dag, &costs, &HeftConfig::default());
    assert!((schedule.predicted_makespan() - 80.0).abs() < 1e-9);
    assert!(schedule.validate(&dag, &costs).is_empty());
}

#[test]
fn simulated_execution_matches_planned_schedule_exactly() {
    // Under exact estimates the executor must realise the plan tick for
    // tick: same placements, same start times, same makespan.
    let (dag, costs, costgen) = setup();
    let schedule = heft_schedule(&dag, &costs, &HeftConfig::default());
    let cfg = RunConfig { record_trace: true, ..Default::default() };
    let report = aheft::core::runner::run_static_heft_with(
        &dag,
        &costs,
        &costgen,
        &PoolDynamics::fixed(3),
        0,
        &cfg,
    );
    assert!((report.makespan - schedule.predicted_makespan()).abs() < 1e-9);
    for (job, resource, start, finish) in report.trace.completed_intervals() {
        let a = schedule.assignment(job).expect("all jobs scheduled");
        assert_eq!(a.resource, resource, "{job} placed differently");
        assert!((a.start - start).abs() < 1e-9, "{job} started at {start}, planned {}", a.start);
        assert!((a.finish - finish).abs() < 1e-9);
    }
}

#[test]
fn aheft_worked_example_never_worse_than_heft() {
    let (dag, costs, costgen) = setup();
    let dynamics = PoolDynamics::periodic_growth(3, sample::FIG4_R4_ARRIVAL, 1.0 / 3.0).with_cap(4);
    for set in [ReschedulableSet::AllUnfinished, ReschedulableSet::NotStarted] {
        let cfg = RunConfig {
            aheft: AheftConfig { reschedulable: set, ..Default::default() },
            ..Default::default()
        };
        let report = run_aheft_with(&dag, &costs, &costgen, &dynamics, 1, &cfg);
        assert_eq!(report.evaluations, 1, "r4's arrival must be evaluated");
        assert!(report.makespan <= 80.0 + 1e-9, "{set:?}: {}", report.makespan);
    }
}

#[test]
fn aheft_equals_heft_at_clock_zero() {
    // §3.4: "AHEFT is identical to HEFT when clock = 0".
    let (dag, costs, _) = setup();
    let heft = heft_schedule(&dag, &costs, &HeftConfig::default());
    let aheft = aheft_reschedule(
        &dag,
        &costs,
        &Snapshot::initial(3),
        &(0..3).map(ResourceId::from).collect::<Vec<_>>(),
        &AheftConfig::default(),
    );
    assert_eq!(heft.len(), aheft.plan.len());
    for a in heft.assignments() {
        let b = aheft.plan.assignment(a.job).expect("same jobs");
        assert_eq!(a.resource, b.resource);
        assert!((a.start - b.start).abs() < 1e-12);
        assert!((a.finish - b.finish).abs() < 1e-12);
    }
}

#[test]
fn what_if_answers_match_heft_over_grown_pool() {
    // The what-if "add r4" answer must equal HEFT run on the 4-column table.
    let (dag, costs, _) = setup();
    let full = sample::fig4_costs_full();
    let heft4 = heft_schedule(&dag, &full, &HeftConfig::default());
    let report = what_if(
        &dag,
        &costs,
        &Snapshot::initial(3),
        &(0..3).map(ResourceId::from).collect::<Vec<_>>(),
        &AheftConfig::default(),
        &WhatIfQuery::AddResources { columns: vec![sample::fig4_r4_column()] },
    );
    assert!((report.hypothetical_makespan - heft4.predicted_makespan()).abs() < 1e-9);
}
