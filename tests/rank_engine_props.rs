//! Property-based gate for the incremental rank engine (ISSUE 4): over
//! random DAGs and random *sequences* of pool add/remove and job-finish
//! deltas, `RankEngine` must produce ranks **exactly equal** (same f64
//! bits, i.e. the same summation order) to a from-scratch
//! `rank_upward_over_into` over the current alive set — for every
//! unfinished job, after every delta.
//!
//! Finished jobs are pruned from the engine's sweep (their ranks are never
//! consulted by the scheduler), so the comparison covers the unfinished
//! set, and additionally the *whole* job set while nothing has finished.

use aheft::prelude::*;
use aheft::workflow::generators::random::{generate, RandomDagParams};
use aheft::workflow::rank::rank_upward_over_into;
use aheft::workflow::rank_engine::RankEngine;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One step of grid dynamics applied to the engine's inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Delta {
    /// A resource joins: sample a column, append it, extend `alive`.
    Join,
    /// A resource departs: drop a random entry of `alive` (the cost table
    /// keeps its column, exactly like the runner).
    Leave,
    /// The next jobs of the topological order finish (the finished set
    /// stays predecessor-closed, as in any real execution).
    Finish(usize),
}

fn arb_scenario() -> impl Strategy<Value = (usize, usize, f64, u64, u32)> {
    (
        4usize..40,                                              // jobs
        1usize..6,                                               // initial resources
        prop_oneof![Just(0.0), Just(0.5), Just(1.0), Just(2.0)], // beta
        0u64..1_000_000,                                         // seed
        3u32..12,                                                // delta steps
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_delta_sequences_match_from_scratch_ranks(
        (jobs, resources, beta, seed, steps) in arb_scenario()
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = RandomDagParams { jobs, beta, ..RandomDagParams::paper_default() };
        let wf = generate(&params, &mut rng);
        let mut costs = wf.costgen.sample_table(&wf.dag, resources, &mut rng)
            .expect("generator matches DAG");
        let mut alive: Vec<ResourceId> =
            (0..resources).map(ResourceId::from).collect();
        let mut finished = vec![false; wf.dag.job_count()];
        let mut finished_count = 0usize;

        let mut engine = RankEngine::new();
        let mut oracle = Vec::new();
        for step in 0..steps {
            // Draw and apply one delta.
            let delta = match rng.random_range(0u32..4) {
                0 => Delta::Join,
                1 if alive.len() > 1 => Delta::Leave,
                _ => Delta::Finish(rng.random_range(0..=2)),
            };
            match delta {
                Delta::Join => {
                    let column = wf.costgen.sample_column(&mut rng);
                    let id = costs.add_resource(&column).expect("column matches");
                    alive.push(id);
                }
                Delta::Leave => {
                    let k = rng.random_range(0..alive.len());
                    alive.remove(k);
                }
                Delta::Finish(n) => {
                    // Finish a prefix extension of the topo order: the
                    // finished set stays predecessor-closed.
                    for _ in 0..n {
                        if finished_count < wf.dag.job_count() {
                            let j = wf.dag.topo_order()[finished_count];
                            finished[j.idx()] = true;
                            finished_count += 1;
                        }
                    }
                }
            }

            let epoch_before = engine.epoch();
            engine.update(&wf.dag, &costs, &alive, |j| finished[j.idx()]);
            rank_upward_over_into(&wf.dag, &costs, &alive, &mut oracle);
            for j in wf.dag.job_ids() {
                if finished[j.idx()] {
                    continue; // pruned: the scheduler never reads these
                }
                prop_assert_eq!(
                    engine.ranks()[j.idx()].to_bits(),
                    oracle[j.idx()].to_bits(),
                    "step {} ({:?}): rank of {} = {} diverged from from-scratch {}",
                    step, delta, j, engine.ranks()[j.idx()], oracle[j.idx()]
                );
            }
            if finished_count == 0 {
                // With nothing finished the equality is total.
                for j in wf.dag.job_ids() {
                    prop_assert_eq!(engine.ranks()[j.idx()].to_bits(), oracle[j.idx()].to_bits());
                }
            }

            // Idempotence: re-updating with unchanged inputs is a cache
            // hit — same epoch, bit-identical ranks.
            let epoch = engine.epoch();
            engine.update(&wf.dag, &costs, &alive, |j| finished[j.idx()]);
            prop_assert_eq!(engine.epoch(), epoch, "cache hit must not bump the epoch");
            let _ = epoch_before;
        }
    }

    /// One engine instance ping-ponged between two unrelated problems
    /// (the sweep harness reuses one workspace for thousands of cases)
    /// must never serve one problem's cached state to the other — even
    /// when job and resource counts collide exactly.
    #[test]
    fn engine_reuse_across_colliding_problems_never_confuses_caches(
        (jobs, resources, seed) in (4usize..30, 2usize..6, 0u64..1_000_000)
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = RandomDagParams { jobs, ..RandomDagParams::paper_default() };
        let wf_a = generate(&params, &mut rng);
        let wf_b = generate(&params, &mut rng);
        let mut costs_a = wf_a.costgen.sample_table(&wf_a.dag, resources, &mut rng).expect("a");
        let mut costs_b = wf_b.costgen.sample_table(&wf_b.dag, resources, &mut rng).expect("b");
        let mut alive_a: Vec<ResourceId> = (0..resources).map(ResourceId::from).collect();
        let mut alive_b = alive_a.clone();

        let mut engine = RankEngine::new();
        let mut oracle = Vec::new();
        for round in 0..4 {
            for (wf, costs, alive) in [
                (&wf_a, &mut costs_a, &mut alive_a),
                (&wf_b, &mut costs_b, &mut alive_b),
            ] {
                if round % 2 == 1 {
                    // Grow each problem's pool on alternating rounds so
                    // append deltas interleave with problem switches.
                    let column = wf.costgen.sample_column(&mut rng);
                    let id = costs.add_resource(&column).expect("column matches");
                    alive.push(id);
                }
                engine.update(&wf.dag, costs, alive, |_| false);
                rank_upward_over_into(&wf.dag, costs, alive, &mut oracle);
                for j in wf.dag.job_ids() {
                    prop_assert_eq!(
                        engine.ranks()[j.idx()].to_bits(),
                        oracle[j.idx()].to_bits(),
                        "round {}: rank of {} diverged after a problem switch",
                        round, j
                    );
                }
            }
        }
    }
}
