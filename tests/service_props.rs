//! Property-based gate for the multi-tenant service layer (ISSUE 8),
//! mirroring `tests/recovery_props.rs`: random arrival traces × every
//! fairness policy × fault levels must
//!
//! * terminate (the outer admission loop and the inner event pumps both
//!   return for any contention pattern, including preemption storms);
//! * conserve workflows: every admitted arrival is finished, failed, or
//!   in flight at the horizon — nothing is lost or double-counted;
//! * never starve under the non-preempting policies: the service is
//!   work-conserving for `fcfs` and `fair-share`, so no workflow waits
//!   longer than the total makespan of the whole arrival population —
//!   a bounded max slowdown for every tenant;
//! * stay bit-deterministic: the same scenario replayed gives the same
//!   service trace.

use aheft::core::runner::RunConfig;
use aheft::core::service::{
    make_fairness, run_service, ArrivalProcess, ServiceConfig, FAIRNESS_NAMES,
};
use aheft::gridsim::fault::{FailureModel, JobFaultModel};
use aheft::workflow::generators::random::RandomDagParams;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One random service scenario: arrival pattern, pool shape, fault level.
#[derive(Debug, Clone)]
struct Scenario {
    workflows: usize,
    tenants: usize,
    capacity: usize,
    slice: usize,
    rate: f64,
    /// Arrival times when trace-driven; empty = Poisson at `rate`.
    trace: Vec<f64>,
    /// 0 = fault-free, 1 = transient churn + crash faults (both levels
    /// finish every job eventually, keeping the conservation split
    /// crisp: failures would only reclassify finished → failed).
    fault_level: u8,
    horizon: Option<f64>,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    // The vendored proptest stand-in has no collection/option strategies, so
    // the trace is derived from a drawn length + seed and the horizon from a
    // raw uniform (< 1500 means "drain", i.e. no horizon). Nested tuples keep
    // each level within the stand-in's 8-element tuple limit.
    (
        (1usize..10, 1usize..4, 2usize..7, 1usize..3), // workflows/tenants/capacity/slice
        (0.0005f64..0.01, 0usize..8, 0u8..2, 0f64..3000.0), // rate/trace len/faults/horizon
        0u64..1_000_000,
    )
        .prop_map(
            |(
                (workflows, tenants, capacity, slice),
                (rate, trace_len, fault_level, hraw),
                seed,
            )| {
                let mut trace_rng = StdRng::seed_from_u64(seed ^ 0x7ace);
                let mut trace: Vec<f64> =
                    (0..trace_len).map(|_| trace_rng.random_range(0f64..2000.0)).collect();
                // Trace arrivals must be sorted; sorting raw uniforms keeps
                // the strategy simple.
                trace.sort_by(f64::total_cmp);
                Scenario {
                    workflows,
                    tenants,
                    capacity,
                    slice: slice.min(capacity),
                    rate,
                    trace,
                    fault_level,
                    horizon: if hraw < 1500.0 { None } else { Some(hraw) },
                    seed,
                }
            },
        )
}

fn service_config(s: &Scenario, fairness: &str) -> ServiceConfig {
    let run = if s.fault_level == 0 {
        RunConfig::default()
    } else {
        RunConfig {
            failures: FailureModel::Transient { mtbf: 400.0, mttr: 80.0 },
            job_faults: JobFaultModel::CrashOnStart { prob: 0.10 },
            ..RunConfig::default()
        }
    };
    ServiceConfig {
        tenants: s.tenants,
        arrivals: if s.trace.is_empty() {
            ArrivalProcess::Poisson { rate: s.rate }
        } else {
            ArrivalProcess::Trace(s.trace.clone())
        },
        workflows: s.workflows,
        capacity: s.capacity,
        slice: s.slice,
        fairness: make_fairness(fairness).expect("registered fairness"),
        workload: RandomDagParams { jobs: 8, ..RandomDagParams::paper_default() },
        run,
        horizon: s.horizon,
        seed: s.seed,
        ..ServiceConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_fairness_policy_terminates_and_conserves_workflows(s in arb_scenario()) {
        for fairness in FAIRNESS_NAMES {
            let cfg = service_config(&s, fairness);
            // Termination is the first property: a stuck admission loop
            // (or a preemption livelock) hangs here instead of returning.
            let r = run_service(&cfg);
            let label = format!("{fairness} ({s:?})");

            // Conservation: admitted = finished + failed + in-flight.
            prop_assert_eq!(
                r.admitted, r.finished + r.failed + r.in_flight,
                "workflow conservation: {}", &label
            );
            prop_assert!(r.admitted <= s.workflows, "{}", &label);
            if s.horizon.is_none() {
                prop_assert_eq!(r.in_flight, 0, "drain leaves work: {}", &label);
            }

            // Per-workflow coherence.
            prop_assert_eq!(r.outcomes.len(), r.admitted, "{}", &label);
            for o in &r.outcomes {
                if let Some(start) = o.first_start {
                    prop_assert!(start >= o.arrival, "{}", &label);
                }
                if let Some(finish) = o.finish {
                    prop_assert!(finish >= o.first_start.expect("finished implies started"),
                        "{}", &label);
                    prop_assert!(o.makespan >= 0.0 && o.makespan.is_finite(), "{}", &label);
                }
                if let Some(slow) = o.slowdown() {
                    prop_assert!(slow >= 1.0 - 1e-9, "slowdown below 1: {}", &label);
                }
            }

            // Tenant accounting sums back to the service totals.
            let admitted: usize = r.tenants.iter().map(|t| t.admitted).sum();
            let completed: usize = r.tenants.iter().map(|t| t.completed).sum();
            prop_assert_eq!(admitted, r.admitted, "{}", &label);
            prop_assert_eq!(completed, r.finished + r.failed, "{}", &label);
            prop_assert!((0.0..=1.0).contains(&r.utilization), "{}", &label);

            // Determinism: replaying the scenario reproduces the trace.
            let again = run_service(&cfg);
            prop_assert_eq!(
                format!("{:?}", r.trace), format!("{:?}", again.trace),
                "service trace is not deterministic: {}", &label
            );
        }
    }

    #[test]
    fn non_preempting_policies_never_starve_a_tenant(s in arb_scenario()) {
        // Drained, fault-free scenarios make the bound exact: fcfs and
        // fair-share never discard work, and whenever a workflow waits at
        // least one other workflow is running, so nobody's response time
        // exceeds the summed makespan of the entire population. That is a
        // hard per-tenant starvation bound; `priority` deliberately
        // violates it (discarded preempted work), which is why it is not
        // in this property.
        let s = Scenario { horizon: None, fault_level: 0, ..s };
        for fairness in ["fcfs", "fair-share"] {
            let cfg = service_config(&s, fairness);
            let r = run_service(&cfg);
            let mut total_makespan = 0.0f64;
            for o in &r.outcomes {
                total_makespan += o.makespan;
            }
            for o in &r.outcomes {
                let latency = o.latency().expect("drained run completes everything");
                prop_assert!(
                    latency <= total_makespan + 1e-6,
                    "{fairness}: workflow {} waited {latency} > total work {total_makespan} ({s:?})",
                    o.index
                );
            }
            // The same bound, phrased per tenant: every tenant's max
            // slowdown is bounded by total work over its smallest job.
            let min_makespan = r
                .outcomes
                .iter()
                .map(|o| o.makespan)
                .fold(f64::INFINITY, f64::min);
            for t in &r.tenants {
                if t.completed > 0 {
                    prop_assert!(
                        t.max_slowdown <= total_makespan / min_makespan + 1e-6,
                        "{fairness}: tenant {} slowdown {} unbounded ({s:?})",
                        t.tenant, t.max_slowdown
                    );
                }
            }
        }
    }
}
