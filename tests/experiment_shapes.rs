//! Smoke-scale runs of the experiment harness asserting the *qualitative*
//! shapes the paper reports (who wins, which way trends point).

use aheft::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Helper: average HEFT/AHEFT/Min-Min makespans over a few seeds.
fn averages(
    gen: &dyn Fn(&mut StdRng) -> GeneratedWorkflow,
    resources: usize,
    dynamics: &PoolDynamics,
    seeds: u64,
    with_minmin: bool,
) -> (f64, f64, Option<f64>) {
    let mut h = 0.0;
    let mut a = 0.0;
    let mut m = 0.0;
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(777 + seed);
        let wf = gen(&mut rng);
        let costs = wf.sample_table(resources, &mut rng);
        h += run_static_heft(&wf.dag, &costs, &wf.costgen, dynamics, seed).makespan;
        a += run_aheft(&wf.dag, &costs, &wf.costgen, dynamics, seed).makespan;
        if with_minmin {
            m +=
                run_dynamic(&wf.dag, &costs, &wf.costgen, dynamics, seed, DynamicHeuristic::MinMin)
                    .makespan;
        }
    }
    let n = seeds as f64;
    (h / n, a / n, with_minmin.then_some(m / n))
}

#[test]
fn minmin_loses_badly_on_data_intensive_workflows() {
    // §4.2 headline shape: Min-Min ≫ HEFT (paper: 12352 vs 4075) — driven
    // by data-intensive cases where just-in-time transfer deferral
    // serialises the communication.
    let dynamics = PoolDynamics::fixed(10);
    let ratio_at = |ccr: f64| {
        let params = RandomDagParams { jobs: 60, ccr, ..RandomDagParams::paper_default() };
        let (h, _a, m) = averages(
            &|rng| aheft::workflow::generators::random::generate(&params, rng),
            10,
            &dynamics,
            4,
            true,
        );
        m.unwrap() / h
    };
    let low = ratio_at(0.1);
    let high = ratio_at(10.0);
    assert!(high > 1.3, "Min-Min should be far worse than HEFT at CCR 10, ratio {high:.2}");
    assert!(high > low, "the Min-Min/HEFT gap must widen with CCR: {low:.2} -> {high:.2}");
}

#[test]
fn improvement_rises_with_ccr_on_random_dags() {
    // Table 3 shape: higher CCR -> larger AHEFT improvement.
    let dynamics = PoolDynamics::periodic_growth(10, 400.0, 0.25);
    let mut rates = Vec::new();
    for ccr in [0.1, 10.0] {
        let params = RandomDagParams { jobs: 80, ccr, ..RandomDagParams::paper_default() };
        let (h, a, _) = averages(
            &|rng| aheft::workflow::generators::random::generate(&params, rng),
            10,
            &dynamics,
            6,
            false,
        );
        rates.push(improvement_rate(h, a));
    }
    assert!(
        rates[1] >= rates[0] - 0.005,
        "improvement at CCR 10 ({:.3}) should exceed CCR 0.1 ({:.3})",
        rates[1],
        rates[0]
    );
}

#[test]
fn blast_benefits_from_growth_more_than_a_static_pool() {
    // Table 6 mechanism: with a fixed pool AHEFT == HEFT; with arrivals it
    // improves.
    let params = AppDagParams { parallelism: 60, ..AppDagParams::paper_default() };
    let gen = |rng: &mut StdRng| aheft::workflow::generators::blast::generate(&params, rng);
    let fixed = PoolDynamics::fixed(8);
    let (hf, af, _) = averages(&gen, 8, &fixed, 3, false);
    assert!((hf - af).abs() < 1e-6, "no events -> no reschedules -> equal makespans");
    let growing = PoolDynamics::periodic_growth(8, 400.0, 0.25);
    let (hg, ag, _) = averages(&gen, 8, &growing, 3, false);
    assert!(ag < hg - 1e-6, "with arrivals AHEFT ({ag:.0}) must improve on HEFT ({hg:.0})");
}

#[test]
fn smaller_initial_pool_gives_larger_improvement() {
    // Fig. 8(d) shape: "the smaller the initial resource pool is the better
    // AHEFT outperforms HEFT".
    let params = AppDagParams { parallelism: 80, ..AppDagParams::paper_default() };
    let gen = |rng: &mut StdRng| aheft::workflow::generators::blast::generate(&params, rng);
    let mut rates = Vec::new();
    for r in [6usize, 40] {
        let dynamics = PoolDynamics::periodic_growth(r, 400.0, 0.25);
        let (h, a, _) = averages(&gen, r, &dynamics, 3, false);
        rates.push(improvement_rate(h, a));
    }
    assert!(
        rates[0] > rates[1] - 0.005,
        "R=6 improvement ({:.3}) should exceed R=40 ({:.3})",
        rates[0],
        rates[1]
    );
}

#[test]
fn more_frequent_arrivals_help_more() {
    // Fig. 8(e) shape: "the more frequent the new resource is available,
    // the more efficient AHEFT can be" (smaller Δ -> larger improvement).
    let params = AppDagParams { parallelism: 80, ..AppDagParams::paper_default() };
    let gen = |rng: &mut StdRng| aheft::workflow::generators::blast::generate(&params, rng);
    let mut rates = Vec::new();
    for delta in [200.0, 1600.0] {
        let dynamics = PoolDynamics::periodic_growth(8, delta, 0.25);
        let (h, a, _) = averages(&gen, 8, &dynamics, 3, false);
        rates.push(improvement_rate(h, a));
    }
    assert!(
        rates[0] > rates[1] - 0.005,
        "Δ=200 improvement ({:.3}) should exceed Δ=1600 ({:.3})",
        rates[0],
        rates[1]
    );
}

#[test]
fn wien2k_bottleneck_limits_gains_vs_blast_at_scale() {
    // Table 6 shape: BLAST (one wide stage) gains more from extra
    // resources than WIEN2K (FERMI bottleneck + serial tail) when the
    // workflow is much wider than the pool.
    let params = AppDagParams { parallelism: 120, ..AppDagParams::paper_default() };
    let dynamics = PoolDynamics::periodic_growth(6, 300.0, 0.25);
    let (hb, ab, _) = averages(
        &|rng| aheft::workflow::generators::blast::generate(&params, rng),
        6,
        &dynamics,
        3,
        false,
    );
    let (hw, aw, _) = averages(
        &|rng| aheft::workflow::generators::wien2k::generate(&params, rng),
        6,
        &dynamics,
        3,
        false,
    );
    let blast_rate = improvement_rate(hb, ab);
    let wien_rate = improvement_rate(hw, aw);
    // Both must improve; report the comparison (see EXPERIMENTS.md for the
    // measured Table 6 reproduction).
    assert!(blast_rate > 0.0, "BLAST must improve, got {blast_rate:.3}");
    assert!(wien_rate >= 0.0, "WIEN2K must not regress, got {wien_rate:.3}");
}
