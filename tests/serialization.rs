//! Serde round-trips for the persistable artifacts: generated workflows,
//! cost tables and plans can be written to JSON (experiment caching,
//! cross-run comparisons) and read back without loss.

use aheft::gridsim::plan::{Assignment, Plan};
use aheft::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dag_round_trips_through_json() {
    let mut rng = StdRng::seed_from_u64(5);
    let params = RandomDagParams { jobs: 25, ..RandomDagParams::paper_default() };
    let wf = aheft::workflow::generators::random::generate(&params, &mut rng);
    let json = serde_json::to_string(&wf.dag).expect("serialize");
    let back: Dag = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.job_count(), wf.dag.job_count());
    assert_eq!(back.edge_count(), wf.dag.edge_count());
    assert_eq!(back.topo_order(), wf.dag.topo_order());
    for (a, b) in wf.dag.edges().iter().zip(back.edges()) {
        assert_eq!(a.src, b.src);
        assert_eq!(a.dst, b.dst);
        // serde_json's default float parsing is not bit-exact (that needs
        // its `float_roundtrip` feature); 1e-12 relative is lossless for
        // scheduling purposes.
        assert!((a.data - b.data).abs() <= 1e-12 * a.data.abs().max(1.0));
    }
}

#[test]
fn cost_table_round_trips_through_json() {
    let mut rng = StdRng::seed_from_u64(6);
    let params = RandomDagParams { jobs: 10, ..RandomDagParams::paper_default() };
    let wf = aheft::workflow::generators::random::generate(&params, &mut rng);
    let costs = wf.sample_table(4, &mut rng);
    let json = serde_json::to_string(&costs).expect("serialize");
    let back: CostTable = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.resource_count(), 4);
    for j in wf.dag.job_ids() {
        for r in 0..4 {
            let (a, b) = (back.comp(j, ResourceId::from(r)), costs.comp(j, ResourceId::from(r)));
            assert!((a - b).abs() <= 1e-12 * b.abs().max(1.0));
        }
    }
}

#[test]
fn cost_generator_round_trips_and_stays_deterministic() {
    let mut rng = StdRng::seed_from_u64(7);
    let params = RandomDagParams { jobs: 12, ..RandomDagParams::paper_default() };
    let wf = aheft::workflow::generators::random::generate(&params, &mut rng);
    let json = serde_json::to_string(&wf.costgen).expect("serialize");
    let back: CostGenerator = serde_json::from_str(&json).expect("deserialize");
    // Same RNG stream -> same sampled column (up to JSON float parsing).
    let mut r1 = StdRng::seed_from_u64(99);
    let mut r2 = StdRng::seed_from_u64(99);
    for (a, b) in wf.costgen.sample_column(&mut r1).iter().zip(back.sample_column(&mut r2)) {
        assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
    }
}

#[test]
fn plan_round_trips_through_json() {
    let plan = Plan::from_assignments(
        15.0,
        vec![
            Assignment { job: JobId(0), resource: ResourceId(2), start: 15.0, finish: 24.0 },
            Assignment { job: JobId(3), resource: ResourceId(0), start: 20.0, finish: 33.0 },
        ],
    );
    let json = serde_json::to_string(&plan).expect("serialize");
    let back: Plan = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.len(), 2);
    assert_eq!(back.planned_at(), 15.0);
    assert_eq!(back.predicted_makespan(), 33.0);
    assert_eq!(back.resource_of(JobId(3)), Some(ResourceId(0)));
    assert_eq!(back.sft(JobId(0)), Some(24.0));
}

#[test]
fn heft_schedule_of_fig4_serializes_losslessly() {
    let dag = aheft::workflow::sample::fig4_dag();
    let costs = aheft::workflow::sample::fig4_costs_initial();
    let s = heft_schedule(&dag, &costs, &HeftConfig::default());
    let json = serde_json::to_string(&s).expect("serialize");
    let back: Schedule = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.predicted_makespan(), s.predicted_makespan());
    assert!(back.validate(&dag, &costs).is_empty());
}
