//! Property-based integration tests: the invariants that make the
//! reproduction trustworthy, checked over randomly generated workloads.

use aheft::core::aheft::{aheft_reschedule, AheftConfig};
use aheft::core::runner::{run_static_heft_with, RunConfig};
use aheft::gridsim::executor::Snapshot;
use aheft::prelude::*;
use aheft::workflow::generators::random::{generate, RandomDagParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_params() -> impl Strategy<Value = (RandomDagParams, usize, u64)> {
    (
        5usize..60,
        prop_oneof![Just(0.1), Just(0.5), Just(1.0), Just(5.0)],
        prop_oneof![Just(0.1), Just(0.5), Just(1.0)],
        prop_oneof![Just(0.1), Just(0.5), Just(1.0)],
        2usize..10,
        0u64..1_000_000,
    )
        .prop_map(|(jobs, ccr, out_degree, beta, resources, seed)| {
            (RandomDagParams { jobs, ccr, out_degree, beta, omega_dag: 100.0 }, resources, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated DAG is acyclic with consistent adjacency, and rank_u
    /// strictly decreases along edges (given positive costs).
    #[test]
    fn generator_and_ranks_are_sound((params, resources, seed) in arb_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wf = generate(&params, &mut rng);
        let costs = wf.sample_table(resources, &mut rng);
        // Topological order covers all jobs exactly once.
        prop_assert_eq!(wf.dag.topo_order().len(), wf.dag.job_count());
        for e in wf.dag.edges() {
            prop_assert!(wf.dag.topo_position(e.src) < wf.dag.topo_position(e.dst));
        }
        let rank = aheft::workflow::rank::rank_upward(&wf.dag, &costs);
        for e in wf.dag.edges() {
            prop_assert!(rank[e.src.idx()] >= rank[e.dst.idx()]);
        }
    }

    /// HEFT schedules are valid: no overlap, precedence + communication
    /// respected, every job placed exactly once.
    #[test]
    fn heft_schedules_are_valid((params, resources, seed) in arb_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wf = generate(&params, &mut rng);
        let costs = wf.sample_table(resources, &mut rng);
        let s = heft_schedule(&wf.dag, &costs, &HeftConfig::default());
        prop_assert_eq!(s.len(), wf.dag.job_count());
        let problems = s.validate(&wf.dag, &costs);
        prop_assert!(problems.is_empty(), "{:?}", problems);
    }

    /// Under exact estimates the simulator realises the static plan
    /// exactly (sim makespan == predicted makespan).
    #[test]
    fn simulation_realises_static_plan((params, resources, seed) in arb_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wf = generate(&params, &mut rng);
        let costs = wf.sample_table(resources, &mut rng);
        let s = heft_schedule(&wf.dag, &costs, &HeftConfig::default());
        let report = run_static_heft_with(
            &wf.dag, &costs, &wf.costgen,
            &PoolDynamics::fixed(resources), seed, &RunConfig::default(),
        );
        prop_assert!((report.makespan - s.predicted_makespan()).abs() < 1e-6,
            "sim {} vs plan {}", report.makespan, s.predicted_makespan());
    }

    /// AHEFT never loses to static HEFT on the same growing grid
    /// (accept-if-better, Fig. 2 line 7).
    #[test]
    fn aheft_dominates_heft((params, resources, seed) in arb_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wf = generate(&params, &mut rng);
        let costs = wf.sample_table(resources, &mut rng);
        let dynamics = PoolDynamics::periodic_growth(resources, 300.0, 0.25);
        let h = run_static_heft(&wf.dag, &costs, &wf.costgen, &dynamics, seed);
        let a = run_aheft(&wf.dag, &costs, &wf.costgen, &dynamics, seed);
        prop_assert!(a.makespan <= h.makespan + 1e-6,
            "AHEFT {} > HEFT {}", a.makespan, h.makespan);
    }

    /// The dynamic executor completes every workflow (no deadlocks, no
    /// lost jobs) and its makespan is at least the best theoretical bound.
    #[test]
    fn dynamic_minmin_completes((params, resources, seed) in arb_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wf = generate(&params, &mut rng);
        let costs = wf.sample_table(resources, &mut rng);
        let report = run_dynamic(
            &wf.dag, &costs, &wf.costgen,
            &PoolDynamics::fixed(resources), seed, DynamicHeuristic::MinMin,
        );
        // Lower bound: the fastest single job cannot finish before its own
        // minimum cost.
        let min_job = wf.dag.job_ids()
            .map(|j| (0..resources).map(|r| costs.comp(j, ResourceId::from(r)))
                .fold(f64::INFINITY, f64::min))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(report.makespan >= min_job - 1e-9);
    }

    /// Rescheduling mid-execution never schedules a job before the clock,
    /// never places anything on a dead resource, and keeps precedence.
    #[test]
    fn reschedule_respects_clock_and_pool((params, resources, seed) in arb_params()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wf = generate(&params, &mut rng);
        let costs = wf.sample_table(resources, &mut rng);
        // Fabricate a mid-execution snapshot: first topo job finished at 50.
        let first = wf.dag.topo_order()[0];
        let mut snap = Snapshot::initial(resources);
        snap.clock = 120.0;
        snap.set_finished(first, ResourceId(0), 50.0);
        snap.resource_avail = vec![120.0; resources];
        let alive: Vec<ResourceId> = (1..resources).map(ResourceId::from).collect();
        if alive.is_empty() { return Ok(()); }
        let out = aheft_reschedule(&wf.dag, &costs, &snap, &alive, &AheftConfig::default());
        for a in out.plan.assignments() {
            prop_assert!(a.start >= 120.0 - 1e-9, "{} starts before clock", a.job);
            prop_assert!(alive.contains(&a.resource), "{} on dead resource", a.job);
        }
        prop_assert_eq!(out.plan.len(), wf.dag.job_count() - 1);
    }
}
