//! Offline vendored stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This stand-in implements the subset the workspace's
//! property-based tests use: [`Strategy`] with `prop_map`, integer-range and
//! [`Just`] strategies, tuple composition, `prop_oneof!`, the `proptest!`
//! test-generating macro, and `prop_assert!`/`prop_assert_eq!`. Cases are
//! generated from per-case deterministic seeds (no shrinking — a failing
//! case prints its index and message instead).

use std::fmt;

#[doc(hidden)]
pub use rand as rand_stub;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Error raised by `prop_assert!` family; carries the failure message.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.random_range(*self.start()..=*self.end())
    }
}

/// Uniform choice between same-typed strategies (backs `prop_oneof!`).
pub struct Union<S> {
    arms: Vec<S>,
}

impl<S> Union<S> {
    pub fn new(arms: Vec<S>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> S::Value {
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].new_value(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

#[doc(hidden)]
pub fn case_rng(case: u32) -> StdRng {
    // Distinct deterministic stream per case index.
    StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1))
}

/// Choose uniformly among strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($arm),+])
    };
}

/// Fallible assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fallible equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Generate `#[test]` functions that run a body over strategy-drawn inputs.
///
/// Grammar subset: an optional `#![proptest_config(..)]` header followed by
/// test functions of the form `fn name(pattern in strategy) { .. }` (the
/// `#[test]` attribute in the source is carried through the `$(#[$meta])*`
/// repetition).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($(#[$meta:meta])* fn $name:ident($pat:pat in $strategy:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = $strategy;
                for case in 0..config.cases {
                    let mut case_rng = $crate::case_rng(case);
                    let $pat = $crate::Strategy::new_value(&strategy, &mut case_rng);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!("proptest case {case}/{} failed: {err}", config.cases);
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($pat:pat in $strategy:expr) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($pat in $strategy) $body)*
        }
    };
}

/// `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds and tuples compose.
        #[test]
        fn ranges_and_tuples((a, b, c) in (1usize..10, prop_oneof![Just(0.5f64), Just(2.0)], 0u64..100)) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b == 0.5 || b == 2.0);
            prop_assert!(c < 100);
        }

        /// prop_map transforms drawn values.
        #[test]
        fn mapping_works(v in (2usize..5).prop_map(|x| x * 10)) {
            prop_assert!(v == 20 || v == 30 || v == 40, "v = {}", v);
            prop_assert_eq!(v % 10, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_assertion_panics_with_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(unused)]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x too small: {}", x);
            }
        }
        inner();
    }
}
