//! Offline vendored stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so the real harness cannot
//! be fetched. This stand-in keeps the bench sources compiling unchanged and
//! gives useful (if statistically modest) numbers when actually run: each
//! benchmark is timed over `sample_size` iterations after one warm-up call,
//! and the mean per-iteration wall time is printed.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier (subset of `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Per-benchmark timing loop handle.
pub struct Bencher {
    iters: usize,
    nanos_per_iter: Option<f64>,
}

impl Bencher {
    /// Time `f` over the configured number of iterations (plus one warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.nanos_per_iter = Some(elapsed.as_nanos() as f64 / self.iters as f64);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { iters: sample_size, nanos_per_iter: None };
    f(&mut b);
    match b.nanos_per_iter {
        Some(ns) if ns >= 1e6 => println!("bench {label:<60} {:>12.3} ms/iter", ns / 1e6),
        Some(ns) if ns >= 1e3 => println!("bench {label:<60} {:>12.3} µs/iter", ns / 1e3),
        Some(ns) => println!("bench {label:<60} {ns:>12.1} ns/iter"),
        None => println!("bench {label:<60} (no iter call)"),
    }
}

/// Declare a group of benchmark functions (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
