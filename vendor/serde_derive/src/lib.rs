//! Hand-written `#[derive(Serialize, Deserialize)]` for the vendored
//! value-model `serde` stand-in. No `syn`/`quote` (offline build), so the
//! item is parsed directly from the token stream and the impls are emitted
//! as source strings. Supported shapes — exactly what this workspace
//! declares:
//!
//! * non-generic structs with named fields (maps),
//! * non-generic tuple structs (newtypes serialize transparently; wider
//!   tuples as sequences),
//! * non-generic enums with unit / tuple / struct variants, externally
//!   tagged like real serde (`"Variant"`, `{"Variant": ...}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------------

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize) stand-in does not support generic type `{name}`");
    }

    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + `[...]`
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `pub(crate)` etc.
                }
            }
            _ => break,
        }
    }
}

/// Split a field/variant list on top-level commas, tracking `<...>` depth so
/// commas inside generic arguments don't split.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                parts.push(Vec::new());
                continue;
            }
            _ => {}
        }
        parts.last_mut().expect("parts never empty").push(tt);
    }
    if parts.last().map(Vec::is_empty).unwrap_or(false) {
        parts.pop(); // trailing comma
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|part| {
            let mut i = 0;
            skip_attrs_and_vis(&part, &mut i);
            match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|part| {
            let mut i = 0;
            skip_attrs_and_vis(&part, &mut i);
            let name = match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, found {other:?}"),
            };
            i += 1;
            let shape = match part.get(i) {
                None => Shape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                other => panic!("unsupported variant body for `{name}`: {other:?}"),
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                // Newtype structs serialize transparently, like real serde.
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => gen_map_literal(fields, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Map(vec![(\
                                 ::serde::Value::Str(\"{vn}\".to_string()), \
                                 ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![(\
                                     ::serde::Value::Str(\"{vn}\".to_string()), \
                                     ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let map = gen_map_literal(fields, "");
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![(\
                                     ::serde::Value::Str(\"{vn}\".to_string()), {map})]),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_map_literal(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::serde::Value::Str(\"{f}\".to_string()), \
                 ::serde::Serialize::to_value(&{access_prefix}{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!(
                    "match __v {{ ::serde::Value::Null => Ok({name}), \
                     other => Err(::serde::Error::msg(format!(\
                         \"expected null for {name}, got {{other:?}}\"))) }}"
                ),
                Shape::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    format!(
                        "let __items = __v.as_seq().ok_or_else(|| ::serde::Error::msg(\
                             format!(\"expected sequence for {name}, got {{__v:?}}\")))?;\n\
                         if __items.len() != {n} {{\n\
                             return Err(::serde::Error::msg(format!(\
                                 \"expected {n} elements for {name}, got {{}}\", __items.len())));\n\
                         }}\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\"))\
                                     .map_err(|e| ::serde::Error::msg(format!(\
                                         \"{name}.{f}: {{e}}\")))?"
                            )
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => return Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(__payload)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __items = __payload.as_seq().ok_or_else(|| \
                                         ::serde::Error::msg(\"expected sequence payload\"))?;\n\
                                     if __items.len() != {n} {{\n\
                                         return Err(::serde::Error::msg(format!(\
                                             \"expected {n} elements for {name}::{vn}, got {{}}\", \
                                             __items.len())));\n\
                                     }}\n\
                                     return Ok({name}::{vn}({}));\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                             __payload.field(\"{f}\"))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let Some(__s) = __v.as_str() {{\n\
                             match __s {{\n{units}\n_ => {{}}\n}}\n\
                         }}\n\
                         if let Some(__entries) = __v.as_map() {{\n\
                             if __entries.len() == 1 {{\n\
                                 if let Some(__tag) = __entries[0].0.as_str() {{\n\
                                     let __payload = &__entries[0].1;\n\
                                     let _ = __payload;\n\
                                     match __tag {{\n{payloads}\n_ => {{}}\n}}\n\
                                 }}\n\
                             }}\n\
                         }}\n\
                         Err(::serde::Error::msg(format!(\
                             \"unrecognized {name} value: {{__v:?}}\")))\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                payloads = payload_arms.join("\n"),
            )
        }
    }
}
