//! Offline vendored stand-in for [`serde_json`]: renders and parses the
//! vendored `serde` [`Value`] tree as standard JSON. Supports the full JSON
//! grammar (objects, arrays, strings with escapes incl. `\uXXXX` surrogate
//! pairs, numbers, booleans, null) plus `serde_json`'s convention of
//! stringifying scalar map keys.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!("trailing characters at offset {}", parser.pos)));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_key(out, k)?;
                out.push(':');
                write_value(out, val)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Shortest round-trippable representation; force a `.0` on integral
        // floats so they re-parse as F64, matching serde_json output.
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // serde_json renders non-finite floats as null.
        out.push_str("null");
    }
}

/// JSON object keys must be strings; stringify scalar keys the way
/// `serde_json` does for integer-keyed maps.
fn write_key(out: &mut String, k: &Value) -> Result<()> {
    match k {
        Value::Str(s) => {
            write_string(out, s);
            Ok(())
        }
        Value::U64(n) => {
            write_string(out, &n.to_string());
            Ok(())
        }
        Value::I64(n) => {
            write_string(out, &n.to_string());
            Ok(())
        }
        Value::F64(f) => {
            write_string(out, &format!("{f}"));
            Ok(())
        }
        Value::Bool(b) => {
            write_string(out, if *b { "true" } else { "false" });
            Ok(())
        }
        other => Err(Error::msg(format!("map key must be scalar, got {other:?}"))),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') | Some(b'f') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg(format!("invalid literal at offset {}", self.pos)))
                }
            }
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg(format!("invalid literal at offset {}", self.pos)))
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((Value::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at offset {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::msg("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?
                            };
                            s.push(c);
                            continue; // parse_hex4 already advanced
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "invalid escape {:?} at offset {}",
                                other.map(|c| c as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi\n\"x\"".to_string()).unwrap(), "\"hi\\n\\\"x\\\"\"");
        assert_eq!(from_str::<String>("\"hi\\n\\\"x\\\"\"").unwrap(), "hi\n\"x\"");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f64, 2.5, -3.25];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert(3u64, vec![1u32, 2]);
        m.insert(7u64, vec![]);
        let s = to_string(&m).unwrap();
        assert_eq!(s, "{\"3\":[1,2],\"7\":[]}");
        assert_eq!(from_str::<std::collections::BTreeMap<u64, Vec<u32>>>(&s).unwrap(), m);

        let opt: Option<f64> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f64>>("4.5").unwrap(), Some(4.5));

        let pair = (1u32, 2.5f64);
        let s = to_string(&pair).unwrap();
        assert_eq!(from_str::<(u32, f64)>(&s).unwrap(), pair);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        let s = to_string(&"é😀".to_string()).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), "é😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
    }

    #[test]
    fn value_parses_nested() {
        let v: Value = from_str("{\"a\":[1,2.5,null,{\"b\":true}]}").unwrap();
        match &v {
            Value::Map(entries) => {
                assert_eq!(entries.len(), 1);
                assert!(matches!(&entries[0].1, Value::Seq(items) if items.len() == 4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
