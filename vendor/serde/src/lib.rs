//! Offline vendored stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This stand-in keeps `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` source-compatible by providing a much
//! simpler *value-model* design: serializable types convert to/from a single
//! [`Value`] tree, and the companion vendored `serde_json` renders/parses
//! that tree as JSON. Only the surface this workspace uses is implemented —
//! non-generic structs and enums (externally tagged), the std collection and
//! scalar types that appear as fields, and lossless round-trips.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A serialized value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map. Keys are full values so maps keyed by
    /// newtype ids (serialized as numbers) round-trip; JSON rendering
    /// stringifies scalar keys the way `serde_json` does.
    Map(Vec<(Value, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(Value, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a struct field by name; absent fields read as `Null` so
    /// `Option` fields can default to `None`.
    pub fn field<'a>(&'a self, name: &str) -> &'a Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| matches!(k, Value::Str(s) if s == name))
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Scalars
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    // Map keys arrive as strings; parse them back.
                    Value::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| Error::msg(format!("invalid integer key {s:?}")))?,
                    other => {
                        return Err(Error::msg(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg(format!("integer {n} out of range")))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    Value::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| Error::msg(format!("invalid integer key {s:?}")))?,
                    other => {
                        return Err(Error::msg(format!("expected integer, got {other:?}")))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::Str(s) => s
                        .parse::<$t>()
                        .map_err(|_| Error::msg(format!("invalid float key {s:?}"))),
                    other => Err(Error::msg(format!("expected float, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            Value::Str(s) if s == "true" => Ok(true),
            Value::Str(s) if s == "false" => Ok(false),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!("expected single-char string, got {other:?}"))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::msg(format!("expected null, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// References and containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::msg(format!("expected sequence, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {len}")))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_value(), v.to_value())).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::msg(format!("expected map, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_value(), v.to_value())).collect())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::msg(format!("expected map, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(k)?, V::from_value(val)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_seq()
                    .ok_or_else(|| Error::msg(format!("expected tuple sequence, got {v:?}")))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected tuple of {expected} elements, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}
