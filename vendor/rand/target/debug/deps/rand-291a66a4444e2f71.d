/root/repo/vendor/rand/target/debug/deps/rand-291a66a4444e2f71.d: src/lib.rs

/root/repo/vendor/rand/target/debug/deps/rand-291a66a4444e2f71: src/lib.rs

src/lib.rs:
