//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, providing exactly the 0.9-style API surface this workspace uses:
//!
//! * [`Rng`] with [`Rng::random_range`] (half-open and inclusive integer and
//!   float ranges) and [`Rng::random_bool`],
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`].
//!
//! The build environment has no network access to crates.io, so the real
//! crate cannot be fetched; this stand-in keeps the public call sites
//! source-compatible. `StdRng` here is SplitMix64 feeding xoshiro256++ —
//! deterministic, seedable and statistically solid for simulation workloads,
//! though *not* the same stream as upstream `StdRng` (which is ChaCha12).
//! All repo code treats seeds as opaque reproducibility handles, so the
//! stream identity does not matter.

/// Uniform sampling support for one primitive type.
///
/// Mirrors the role of `rand::distr::uniform::SampleUniform`: a type that
/// knows how to draw itself uniformly from `[lo, hi)`.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Inclusive upper bound; needed so `lo..=MAX` does not overflow.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {}..{}", lo, hi);
                Self::sample_inclusive(rng, lo, hi - 1)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {}..={}", lo, hi);
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                // Unbiased modulo-with-zone rejection: values above `zone`
                // (the largest multiple of `span` minus 1) are redrawn.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return lo.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {}..{}", lo, hi);
                // 53 random mantissa bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = lo as f64 + unit * (hi as f64 - lo as f64);
                // Guard against rounding up to the excluded bound.
                if v as $t >= hi { lo } else { v as $t }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {}..={}", lo, hi);
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Raw 64-bit generator — object-safe core that [`Rng`] extends.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value in `range` (`lo..hi` or `lo..=hi`).
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare 53 uniform bits against the probability.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, expanding it to full state.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            let s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(3usize..=17);
            assert!((3..=17).contains(&y));
            let f = rng.random_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn works_through_mut_ref_and_generic_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.random_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let r = &mut rng;
        assert!(draw(r) < 10);
        assert!(draw(&mut rng) < 10);
    }

    #[test]
    fn single_value_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.random_range(5usize..=5), 5);
        assert_eq!(rng.random_range(4usize..5), 4);
    }
}
